package canbus

import (
	"errors"
	"testing"
)

// corruptingBus builds a two-node bus whose Corrupt hook flips a
// payload bit while *corrupting is true, under error confinement.
func corruptingBus(corrupting *bool, cfg Config) (*Bus, *Tap, *int) {
	inj := &Injector{Corrupt: func(_ Time, f Frame) Frame {
		if *corrupting {
			f.Data[0] ^= 0x01
		}
		return f
	}}
	cfg.Injector = inj
	cfg.ErrorConfinement = true
	bus := New(cfg)
	tx := bus.Attach("TX", ReceiverFunc(func(Time, Frame) {}))
	delivered := new(int)
	bus.Attach("RX", ReceiverFunc(func(Time, Frame) { *delivered++ }))
	return bus, tx, delivered
}

// stepUntil steps the bus until cond holds or the queue drains.
func stepUntil(bus *Bus, cond func() bool) bool {
	for i := 0; i < 1_000_000; i++ {
		if cond() {
			return true
		}
		if !bus.Step() {
			return cond()
		}
	}
	return cond()
}

func TestErrorCountersMoveAndDecay(t *testing.T) {
	corrupting := true
	bus, tx, delivered := corruptingBus(&corrupting, Config{})
	errsLeft := 2
	// Re-wrap the hook to stop corrupting after two wire errors.
	orig := bus.cfg.Injector.Corrupt
	bus.cfg.Injector.Corrupt = func(at Time, f Frame) Frame {
		if errsLeft == 0 {
			return f
		}
		errsLeft--
		return orig(at, f)
	}

	if err := bus.Transmit(tx, Frame{ID: 1, Data: []byte{0}}); err != nil {
		t.Fatal(err)
	}
	bus.RunAll(1000)

	// Two detected errors: TEC rose by 8 each, then one successful
	// retransmission decayed it; the receiver's REC rose by 1 each and
	// decayed once.
	if got, want := tx.TEC(), 2*8-1; got != want {
		t.Errorf("TEC = %d, want %d", got, want)
	}
	var rx *Tap
	for _, tap := range bus.taps {
		if tap.Name() == "RX" {
			rx = tap
		}
	}
	if got, want := rx.REC(), 2*1-1; got != want {
		t.Errorf("REC = %d, want %d", got, want)
	}
	if *delivered != 1 {
		t.Errorf("delivered %d frames, want 1", *delivered)
	}
	s := bus.Stats()
	if s.ErrorFrames != 2 || s.Retransmissions != 2 {
		t.Errorf("ErrorFrames=%d Retransmissions=%d, want 2 and 2", s.ErrorFrames, s.Retransmissions)
	}
	if tx.State() != ErrorActive {
		t.Errorf("state = %v, want error-active", tx.State())
	}
}

func TestErrorPassiveTransition(t *testing.T) {
	corrupting := true
	bus, tx, _ := corruptingBus(&corrupting, Config{})
	if err := bus.Transmit(tx, Frame{ID: 1, Data: []byte{0}}); err != nil {
		t.Fatal(err)
	}
	if !stepUntil(bus, func() bool { return tx.State() == ErrorPassive }) {
		t.Fatalf("transmitter never reached error-passive (TEC %d)", tx.TEC())
	}
	if tx.TEC() <= passiveThreshold || tx.TEC() > busOffThreshold {
		t.Errorf("error-passive TEC = %d, want in (%d, %d]", tx.TEC(), passiveThreshold, busOffThreshold)
	}
}

func TestBusOffEntryAndRecovery(t *testing.T) {
	corrupting := true
	bus, tx, delivered := corruptingBus(&corrupting, Config{})
	if err := bus.Transmit(tx, Frame{ID: 1, Data: []byte{0}}); err != nil {
		t.Fatal(err)
	}
	if !stepUntil(bus, func() bool { return tx.State() == BusOff }) {
		t.Fatalf("transmitter never reached bus-off (TEC %d, state %v)", tx.TEC(), tx.State())
	}
	s := bus.Stats()
	// 32 consecutive detected errors drive the TEC past 255; the last
	// one enters bus-off, so only 31 retransmissions happened.
	if s.ErrorFrames != 32 || s.Retransmissions != 31 || s.BusOffEvents != 1 {
		t.Errorf("ErrorFrames=%d Retransmissions=%d BusOffEvents=%d, want 32/31/1",
			s.ErrorFrames, s.Retransmissions, s.BusOffEvents)
	}

	// A bus-off controller refuses transmit requests.
	if err := bus.Transmit(tx, Frame{ID: 2}); !errors.Is(err, ErrBusOff) {
		t.Errorf("Transmit while bus-off = %v, want ErrBusOff", err)
	}
	if bus.Stats().FramesRejected == 0 {
		t.Error("rejected transmission not counted")
	}

	// Stop disturbing the wire and let the recovery sequence complete:
	// the node rejoins error-active with cleared counters.
	corrupting = false
	bus.RunAll(10_000)
	if tx.State() != ErrorActive {
		t.Fatalf("state after recovery = %v, want error-active", tx.State())
	}
	if tx.TEC() != 0 || tx.REC() != 0 {
		t.Errorf("counters after recovery TEC=%d REC=%d, want 0/0", tx.TEC(), tx.REC())
	}
	if err := bus.Transmit(tx, Frame{ID: 3, Data: []byte{1}}); err != nil {
		t.Fatal(err)
	}
	bus.RunAll(100)
	if *delivered == 0 {
		t.Error("no frame delivered after recovery")
	}
}

func TestBusOffRecoveryOverride(t *testing.T) {
	corrupting := true
	bus, tx, _ := corruptingBus(&corrupting, Config{BusOffRecovery: 5 * Millisecond})
	if err := bus.Transmit(tx, Frame{ID: 1, Data: []byte{0}}); err != nil {
		t.Fatal(err)
	}
	if !stepUntil(bus, func() bool { return tx.State() == BusOff }) {
		t.Fatal("transmitter never reached bus-off")
	}
	corrupting = false
	offAt := bus.Now()
	bus.Run(offAt + 4*Millisecond)
	if tx.State() != BusOff {
		t.Fatalf("state %v before the configured recovery time", tx.State())
	}
	bus.Run(offAt + 6*Millisecond)
	if tx.State() != ErrorActive {
		t.Errorf("state %v after the configured recovery time, want error-active", tx.State())
	}
}

func TestConfinementOffKeepsLegacyBehaviour(t *testing.T) {
	// Without ErrorConfinement a corrupt hook delivers the mutation and
	// no counters move — the pre-confinement contract the existing
	// injection tests rely on.
	inj := &Injector{Corrupt: func(_ Time, f Frame) Frame {
		f.Data[0] ^= 0xFF
		return f
	}}
	bus := New(Config{Injector: inj})
	tx := bus.Attach("TX", ReceiverFunc(func(Time, Frame) {}))
	got := 0
	bus.Attach("RX", ReceiverFunc(func(Time, Frame) { got++ }))
	if err := bus.Transmit(tx, Frame{ID: 1, Data: []byte{0}}); err != nil {
		t.Fatal(err)
	}
	bus.RunAll(100)
	if got != 1 {
		t.Errorf("delivered %d frames, want 1", got)
	}
	if tx.TEC() != 0 || tx.State() != ErrorActive {
		t.Errorf("confinement state moved without ErrorConfinement: TEC=%d state=%v", tx.TEC(), tx.State())
	}
	if s := bus.Stats(); s.ErrorFrames != 0 || s.Retransmissions != 0 {
		t.Errorf("confinement counters moved: %+v", s)
	}
}
