package conformance

import (
	"bytes"
	"reflect"
	"strings"
	"sync"
	"testing"

	"repro/internal/canbus"
)

// sharedRunner returns a package-wide runner so the expensive observed
// models are built once per (variant, budgets) pair across the tests.
var sharedRunner = sync.OnceValues(func() (*Runner, error) {
	return NewRunner()
})

func testRunner(t *testing.T) *Runner {
	t.Helper()
	r, err := sharedRunner()
	if err != nil {
		t.Fatalf("NewRunner: %v", err)
	}
	return r
}

// shortGen keeps test campaigns fast: divergences in this protocol
// surface within the first few frames.
func shortGen() GenConfig {
	return GenConfig{Horizon: 12 * canbus.Millisecond, MaxOps: 2}
}

func TestFaultFreeVariantsConform(t *testing.T) {
	r := testRunner(t)
	for _, variant := range []Variant{VariantNaive, VariantHardened} {
		s := Schedule{Variant: variant, HorizonUs: 12_000}
		v := r.RunSchedule(s)
		if v.Kind != Conforms {
			t.Fatalf("%s fault-free: verdict %s (detail %q), want conforms", variant, v.Kind, v.Detail)
		}
		if v.DeliveredFrames == 0 {
			t.Fatalf("%s fault-free: no frames delivered", variant)
		}
		if len(v.AppliedOps) != 0 || !v.Budgets.IsZero() {
			t.Fatalf("%s fault-free: unexpected ops %v / budgets %+v", variant, v.AppliedOps, v.Budgets)
		}
	}
}

func TestFaultedSchedulesConformUnderBudgets(t *testing.T) {
	r := testRunner(t)
	cases := []Schedule{
		{Variant: VariantNaive, HorizonUs: 12_000, Ops: []Op{{Kind: OpDropFrame, Nth: 2}}},
		{Variant: VariantNaive, HorizonUs: 12_000, Ops: []Op{{Kind: OpDupFrame, Nth: 1, DelayUs: 400}}},
		{Variant: VariantHardened, HorizonUs: 12_000, Ops: []Op{{Kind: OpDelayFrame, Nth: 3, DelayUs: 900}}},
	}
	for _, s := range cases {
		v := r.RunSchedule(s)
		if v.Kind != Conforms {
			t.Errorf("%s %v: verdict %s (detail %q, divergence %+v), want conforms",
				s.Variant, s.Ops, v.Kind, v.Detail, v.Divergence)
			continue
		}
		if len(v.AppliedOps) == 0 || v.Budgets.IsZero() {
			t.Errorf("%s %v: perturbation did not fire (ops %v, budgets %+v)",
				s.Variant, s.Ops, v.AppliedOps, v.Budgets)
		}
	}
}

func TestFlawedDivergesAndShrinksDeterministically(t *testing.T) {
	r := testRunner(t)
	s := GenerateSchedule(VariantFlawed, scheduleSeed(7, 0), shortGen())
	v := r.RunSchedule(s)
	if v.Kind != Diverges {
		t.Fatalf("flawed: verdict %s (detail %q), want diverges", v.Kind, v.Detail)
	}
	if v.Divergence == nil || v.Divergence.BadEvent == "" {
		t.Fatalf("flawed: divergence diagnosis missing: %+v", v)
	}

	shrunk1, sv1, err := r.Shrink(s)
	if err != nil {
		t.Fatalf("Shrink: %v", err)
	}
	shrunk2, sv2, err := r.Shrink(s)
	if err != nil {
		t.Fatalf("Shrink (2nd): %v", err)
	}
	if !reflect.DeepEqual(shrunk1, shrunk2) {
		t.Fatalf("shrinking is nondeterministic:\n%+v\n%+v", shrunk1, shrunk2)
	}
	if sv1.Kind != Diverges || sv2.Kind != Diverges {
		t.Fatalf("shrunk schedule verdicts: %s / %s, want diverges", sv1.Kind, sv2.Kind)
	}
	if len(shrunk1.Ops) > len(s.Ops) || shrunk1.HorizonUs > s.HorizonUs {
		t.Fatalf("shrunk schedule grew: %+v from %+v", shrunk1, s)
	}
	// The flawed gateway misbehaves on the very first exchange, so the
	// minimal reproduction needs no perturbations at all.
	if len(shrunk1.Ops) != 0 {
		t.Errorf("flawed shrunk ops = %v, want none", shrunk1.Ops)
	}

	// The shrunk schedule replays to the same divergence.
	rv := r.RunSchedule(shrunk1)
	if rv.Kind != Diverges || rv.Divergence == nil ||
		rv.Divergence.FailedAt != sv1.Divergence.FailedAt ||
		rv.Divergence.BadEvent != sv1.Divergence.BadEvent {
		t.Fatalf("shrunk replay mismatch: %+v vs %+v", rv.Divergence, sv1.Divergence)
	}
}

func TestShrinkRejectsConformingSchedule(t *testing.T) {
	r := testRunner(t)
	s := Schedule{Variant: VariantNaive, HorizonUs: 12_000}
	if _, _, err := r.Shrink(s); err == nil {
		t.Fatal("Shrink accepted a conforming schedule")
	}
}

func TestCampaignReportByteIdentical(t *testing.T) {
	cfg := Config{Seed: 42, SchedulesPerVariant: 1, Gen: shortGen()}
	rep1, err := Run(cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	rep2, err := Run(cfg)
	if err != nil {
		t.Fatalf("Run (2nd): %v", err)
	}
	j1, err := rep1.JSON()
	if err != nil {
		t.Fatalf("JSON: %v", err)
	}
	j2, err := rep2.JSON()
	if err != nil {
		t.Fatalf("JSON (2nd): %v", err)
	}
	if !bytes.Equal(j1, j2) {
		t.Fatalf("campaign JSON not byte-identical:\n%s\n----\n%s", j1, j2)
	}
	if rep1.Text() != rep2.Text() {
		t.Fatalf("campaign text not identical:\n%s\n----\n%s", rep1.Text(), rep2.Text())
	}
	if rep1.Schedules != 3 {
		t.Fatalf("schedules = %d, want 3", rep1.Schedules)
	}
	if rep1.Diverges == 0 {
		t.Fatalf("campaign found no divergence (flawed variant should):\n%s", rep1.Text())
	}
	if rep1.InterpreterErrors != 0 {
		t.Fatalf("campaign hit interpreter errors:\n%s", rep1.Text())
	}
}

func TestGenerateScheduleDeterministic(t *testing.T) {
	cfg := shortGen()
	a := GenerateSchedule(VariantHardened, 99, cfg)
	b := GenerateSchedule(VariantHardened, 99, cfg)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed, different schedules:\n%+v\n%+v", a, b)
	}
	// Timer jitter may only target variants that use timers.
	for seed := int64(0); seed < 40; seed++ {
		for _, variant := range []Variant{VariantNaive, VariantFlawed} {
			s := GenerateSchedule(variant, seed, cfg)
			for _, op := range s.Ops {
				if op.Kind == OpJitterTimer {
					t.Fatalf("%s schedule (seed %d) got timer jitter: %+v", variant, seed, s)
				}
			}
		}
	}
}

func TestScheduleJSONRoundTrip(t *testing.T) {
	s := Schedule{
		Variant:   VariantHardened,
		Seed:      -3,
		HorizonUs: 5000,
		Ops: []Op{
			{Kind: OpJitterTimer, Node: "VMG", Nth: 2, DeltaMs: -15},
			{Kind: OpDelayFrame, Nth: 7, DelayUs: 1200},
		},
	}
	data, err := s.EncodeJSON()
	if err != nil {
		t.Fatalf("EncodeJSON: %v", err)
	}
	got, err := DecodeSchedule(data)
	if err != nil {
		t.Fatalf("DecodeSchedule: %v", err)
	}
	if !reflect.DeepEqual(got, s) {
		t.Fatalf("round trip mismatch: %+v != %+v", got, s)
	}
}

func TestDecodeScheduleValidation(t *testing.T) {
	cases := []struct {
		name string
		data string
		want string
	}{
		{"malformed", `{"variant": `, "decode schedule"},
		{"unknown variant", `{"variant":"turbo","horizonUs":1000}`, "unknown variant"},
		{"zero horizon", `{"variant":"naive","horizonUs":0}`, "horizon"},
		{"bad op kind", `{"variant":"naive","horizonUs":1000,"ops":[{"kind":"explode"}]}`, "unknown kind"},
		{"negative nth", `{"variant":"naive","horizonUs":1000,"ops":[{"kind":"drop-frame","nth":-1}]}`, "negative index"},
	}
	for _, tc := range cases {
		_, err := DecodeSchedule([]byte(tc.data))
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want mention of %q", tc.name, err, tc.want)
		}
	}
}

func TestRunScheduleUnknownVariantIsError(t *testing.T) {
	r := testRunner(t)
	v := r.RunSchedule(Schedule{Variant: Variant("bogus"), HorizonUs: 1000})
	if v.Kind != InterpreterError {
		t.Fatalf("verdict %s, want interpreter-error", v.Kind)
	}
}

func TestRunScheduleSimEventBudget(t *testing.T) {
	r, err := NewRunner()
	if err != nil {
		t.Fatalf("NewRunner: %v", err)
	}
	r.MaxSimEvents = 1 // exhausted after the first chunk probe
	v := r.RunSchedule(Schedule{Variant: VariantNaive, HorizonUs: int64(20 * canbus.Second)})
	if v.Kind != BudgetExceeded || v.Detail != "sim-events" {
		t.Fatalf("verdict %s (detail %q), want budget-exceeded/sim-events", v.Kind, v.Detail)
	}
}

func TestProjectorRejectsUnknownID(t *testing.T) {
	p, err := NewOTAProjector()
	if err != nil {
		t.Fatalf("NewOTAProjector: %v", err)
	}
	if _, err := p.Frame(canbus.Frame{ID: 0x7FF}); err == nil {
		t.Fatal("unknown identifier projected without error")
	}
	if dir := p.Direction(0x101); dir != "sendE" {
		t.Fatalf("Direction(0x101) = %q, want sendE", dir)
	}
	if dir := p.Direction(0x102); dir != "rec" {
		t.Fatalf("Direction(0x102) = %q, want rec", dir)
	}
}
