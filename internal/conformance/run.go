package conformance

import (
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/canbus"
	"repro/internal/canoe"
	"repro/internal/csp"
	"repro/internal/lts"
	"repro/internal/obs"
	"repro/internal/ota"
	"repro/internal/refine"
)

// VerdictKind classifies a schedule outcome.
type VerdictKind string

// The conformance verdict taxonomy.
const (
	// Conforms: the observed trace is a trace of the reference model
	// under the derived fault budgets.
	Conforms VerdictKind = "conforms"
	// Diverges: the model cannot produce the observed trace — either the
	// implementation does not match its model or the fault abstraction
	// is too tight. Divergent verdicts carry the failure point and (after
	// shrinking) a minimal replayable schedule.
	Diverges VerdictKind = "diverges"
	// BudgetExceeded: a resource bound (state count, wall-clock
	// deadline, simulation event budget) fired before a conclusive
	// answer. Detail names the exhausted budget.
	BudgetExceeded VerdictKind = "budget-exceeded"
	// InterpreterError: the simulation, projection or model evaluation
	// itself failed — including contained panics from the checking core.
	InterpreterError VerdictKind = "interpreter-error"
)

// Divergence is the diagnosis attached to a diverging verdict.
type Divergence struct {
	// FailedAt is the index of the first inadmissible observed event.
	FailedAt int `json:"failedAt"`
	// BadEvent is that event.
	BadEvent string `json:"badEvent"`
	// Allowed lists the events the model offered instead (sorted).
	Allowed []string `json:"allowed,omitempty"`
	// Context is the observed event window ending at the failure.
	Context []string `json:"context,omitempty"`
	// Shrunk is the minimal reproducing schedule (delta-debugged ops,
	// reduced horizon); replayable via cmd/soak -replay.
	Shrunk *Schedule `json:"shrunk,omitempty"`
	// ShrunkFailedAt is the failure index under the shrunk schedule.
	ShrunkFailedAt int `json:"shrunkFailedAt,omitempty"`
}

// Verdict is the judged result of one schedule run.
type Verdict struct {
	// Name identifies the schedule inside a campaign.
	Name     string      `json:"name,omitempty"`
	Schedule Schedule    `json:"schedule"`
	Kind     VerdictKind `json:"verdict"`
	// DeliveredFrames is the length of the observed (monitor) trace.
	DeliveredFrames int `json:"deliveredFrames"`
	// AppliedOps lists the perturbations that actually fired.
	AppliedOps []string `json:"appliedOps,omitempty"`
	// Budgets is the fault slack derived from the applied perturbations.
	Budgets ota.ChannelBudgets `json:"budgets"`
	// ModelStates is the number of model states the trace check visited.
	ModelStates int `json:"modelStates,omitempty"`
	// Detail carries the exhausted budget phase or the error text.
	Detail     string      `json:"detail,omitempty"`
	Divergence *Divergence `json:"divergence,omitempty"`
}

// JSON renders the verdict as indented JSON (the cmd/soak replay
// output).
func (v Verdict) JSON() ([]byte, error) {
	return json.MarshalIndent(v, "", "  ")
}

// Runner executes schedules. It caches reference models per (variant,
// budgets) pair and explored model LTSs in a shared lts.Cache. A Runner
// is safe for concurrent use: campaign workers running RunSchedule in
// parallel share both caches, so each reference model is built and
// explored exactly once per campaign.
type Runner struct {
	// MaxStates bounds the trace-membership frontier (0: checker
	// default).
	MaxStates int
	// MaxDuration is the per-schedule wall-clock watchdog covering
	// simulation, model build and trace check (default 20s).
	MaxDuration time.Duration
	// MaxSimEvents bounds simulator events per run, containing runaway
	// measurements such as zero-period timer loops (default 300000).
	MaxSimEvents int
	// Obs receives per-schedule spans and counters (and is threaded into
	// the bus and checker). nil disables instrumentation; verdicts and
	// reports are byte-identical either way.
	Obs *obs.Observer

	projector *Projector
	ltsCache  *lts.Cache

	mu     sync.Mutex
	models map[modelKey]*modelEntry
}

type modelKey struct {
	variant Variant
	budgets ota.ChannelBudgets
}

// modelEntry is a once-built reference model; concurrent schedules
// asking for the same (variant, budgets) tuple share one build.
type modelEntry struct {
	once sync.Once
	sys  *ota.System
	err  error
}

// NewRunner builds a runner over the OTA projection.
func NewRunner() (*Runner, error) {
	p, err := NewOTAProjector()
	if err != nil {
		return nil, err
	}
	return &Runner{
		MaxDuration:  20 * time.Second,
		MaxSimEvents: 300_000,
		projector:    p,
		ltsCache:     lts.NewCache(),
		models:       make(map[modelKey]*modelEntry),
	}, nil
}

// model returns the cached observed-bus reference model for the variant
// and budget tuple, building it on first use. Model builds are
// deterministic, so errors are cached alongside successes.
func (r *Runner) model(variant Variant, b ota.ChannelBudgets) (*ota.System, error) {
	key := modelKey{variant: variant, budgets: b}
	r.mu.Lock()
	e, ok := r.models[key]
	if !ok {
		e = &modelEntry{}
		r.models[key] = e
	}
	r.mu.Unlock()
	e.once.Do(func() {
		cfg, err := variant.referenceConfig()
		if err != nil {
			e.err = err
			return
		}
		cfg.Budgets = b
		e.sys, e.err = ota.BuildObserved(cfg)
	})
	return e.sys, e.err
}

// appliedOp records a perturbation that fired, with the delivered-side
// direction of the frame it hit (empty for timer jitter).
type appliedOp struct {
	op  Op
	dir string
}

// simResult is the raw material of a verdict.
type simResult struct {
	trace   []canoe.TimedFrame
	applied []appliedOp
}

// maxInjectedReplays caps fabricated retransmissions so a duplicated
// duplicate cannot cascade.
const maxInjectedReplays = 64

// errSimEvents marks simulation event-budget exhaustion.
var errSimEvents = errors.New("simulation event budget exhausted")

// errDeadline marks watchdog expiry during simulation.
var errDeadline = errors.New("wall-clock deadline exceeded")

// simulate runs the schedule on the simulated bus and collects the
// monitor trace plus the perturbations that fired.
func (r *Runner) simulate(s Schedule, deadline time.Time) (simResult, error) {
	var res simResult
	ecuSrc, vmgSrc, err := s.Variant.simSources()
	if err != nil {
		return res, err
	}
	inj := &canbus.Injector{}
	sim := canoe.NewSimulation(canbus.Config{
		Injector:         inj,
		ErrorConfinement: true,
		Obs:              r.Obs,
	})
	vmg, err := sim.AddNode("VMG", vmgSrc)
	if err == nil {
		_, err = sim.AddNode("ECU", ecuSrc)
	}
	if err != nil {
		return res, err
	}
	chaos := sim.Bus.Attach("__chaos__", canbus.ReceiverFunc(func(canbus.Time, canbus.Frame) {}))

	frameOps := map[int][]Op{}
	jitterOps := map[int][]Op{}
	for _, op := range s.Ops {
		if op.Kind == OpJitterTimer {
			jitterOps[op.Nth] = append(jitterOps[op.Nth], op)
			continue
		}
		frameOps[op.Nth] = append(frameOps[op.Nth], op)
	}

	injected := 0
	replay := func(at canbus.Time, f canbus.Frame) {
		if injected >= maxInjectedReplays {
			return
		}
		injected++
		clone := f.Clone()
		_ = sim.Bus.Schedule(at, func() { _ = sim.Bus.Transmit(chaos, clone) })
	}

	// Frame ops key off the completed-transmission sequence number,
	// counted by the Observe hook (which runs before the drop decision,
	// so Drop sees index txIndex-1).
	txIndex := 0
	inj.Observe = func(t canbus.Time, f canbus.Frame) {
		i := txIndex
		txIndex++
		for _, op := range frameOps[i] {
			if op.Kind == OpDupFrame {
				replay(t+canbus.Time(op.DelayUs), f)
				res.applied = append(res.applied, appliedOp{op: op, dir: r.projector.Direction(f.ID)})
			}
		}
	}
	inj.Drop = func(t canbus.Time, f canbus.Frame) bool {
		drop := false
		for _, op := range frameOps[txIndex-1] {
			switch op.Kind {
			case OpDropFrame:
				drop = true
				res.applied = append(res.applied, appliedOp{op: op, dir: r.projector.Direction(f.ID)})
			case OpDelayFrame:
				drop = true
				replay(t+canbus.Time(op.DelayUs), f)
				res.applied = append(res.applied, appliedOp{op: op, dir: r.projector.Direction(f.ID)})
			}
		}
		return drop
	}

	// Timer jitter keys off the per-node setTimer call sequence.
	if len(jitterOps) > 0 {
		timerCalls := 0
		vmg.TimerJitter = func(name string, ms int64) int64 {
			i := timerCalls
			timerCalls++
			for _, op := range jitterOps[i] {
				ms += op.DeltaMs
				res.applied = append(res.applied, appliedOp{op: op})
			}
			return ms
		}
	}

	if err := sim.Start(); err != nil {
		return res, err
	}
	// Chunked run: watchdog probes between chunks, an overall event
	// budget contains runaway simulations.
	const chunk = 20_000
	maxEvents := r.MaxSimEvents
	if maxEvents <= 0 {
		maxEvents = 300_000
	}
	for events := 0; ; {
		if time.Now().After(deadline) {
			return res, errDeadline
		}
		done, err := sim.RunLimited(canbus.Time(s.HorizonUs), chunk)
		if err != nil {
			return res, err
		}
		if done {
			break
		}
		events += chunk
		if events >= maxEvents {
			return res, errSimEvents
		}
	}
	res.trace = sim.Trace()
	return res, nil
}

// deriveBudgets converts the perturbations that fired into channel
// slack: a drop consumes a drop credit in its frame's direction, a
// duplicate a spurious-delivery credit, a delayed replay one of each
// (the loss and the late reappearance).
func deriveBudgets(applied []appliedOp) ota.ChannelBudgets {
	var b ota.ChannelBudgets
	bump := func(dir string, drop, spur bool) {
		switch dir {
		case ota.ObservedToECU:
			if drop {
				b.DropToECU++
			}
			if spur {
				b.SpurToECU++
			}
		case ota.ObservedToVMG:
			if drop {
				b.DropToVMG++
			}
			if spur {
				b.SpurToVMG++
			}
		}
	}
	for _, a := range applied {
		switch a.op.Kind {
		case OpDropFrame:
			bump(a.dir, true, false)
		case OpDupFrame:
			bump(a.dir, false, true)
		case OpDelayFrame:
			bump(a.dir, true, true)
		}
	}
	return b
}

// divergenceContextLen bounds the observed-event window kept with a
// divergence diagnosis.
const divergenceContextLen = 8

// RunSchedule executes one schedule end to end: simulate, project,
// derive budgets, check trace membership, judge. Panics anywhere in the
// pipeline are contained into an InterpreterError verdict, and the
// wall-clock watchdog turns a hung phase into BudgetExceeded.
func (r *Runner) RunSchedule(s Schedule) (v Verdict) {
	v = Verdict{Schedule: s}
	span := r.Obs.StartSpan("conformance.schedule",
		obs.String("variant", string(s.Variant)),
		obs.Int("seed", s.Seed),
		obs.Int("ops", int64(len(s.Ops))))
	defer func() {
		if p := recover(); p != nil {
			v.Kind = InterpreterError
			v.Detail = fmt.Sprintf("panic: %v", p)
		}
		r.Obs.Counter("conformance.schedules").Inc()
		r.Obs.Counter("conformance.verdict." + string(v.Kind)).Inc()
		span.End(obs.String("verdict", string(v.Kind)),
			obs.Int("deliveredFrames", int64(v.DeliveredFrames)),
			obs.Int("modelStates", int64(v.ModelStates)))
	}()
	maxDur := r.MaxDuration
	if maxDur <= 0 {
		maxDur = 20 * time.Second
	}
	deadline := time.Now().Add(maxDur)

	sres, err := r.simulate(s, deadline)
	for _, a := range sres.applied {
		v.AppliedOps = append(v.AppliedOps, a.op.String())
	}
	if err != nil {
		switch {
		case errors.Is(err, errSimEvents):
			v.Kind = BudgetExceeded
			v.Detail = "sim-events"
		case errors.Is(err, errDeadline):
			v.Kind = BudgetExceeded
			v.Detail = "sim-deadline"
		default:
			v.Kind = InterpreterError
			v.Detail = err.Error()
		}
		return v
	}
	v.DeliveredFrames = len(sres.trace)
	v.Budgets = deriveBudgets(sres.applied)

	trace, err := r.projector.Trace(sres.trace)
	if err != nil {
		v.Kind = InterpreterError
		v.Detail = err.Error()
		return v
	}
	sys, err := r.model(s.Variant, v.Budgets)
	if err != nil {
		v.Kind = InterpreterError
		v.Detail = err.Error()
		return v
	}

	checker := refine.NewChecker(sys.Model.Env, sys.Model.Ctx)
	checker.MaxStates = r.MaxStates
	checker.Obs = r.Obs
	// The shared cache persists each model term's transition list across
	// schedules, so a campaign expands the reference model once.
	checker.Cache = r.ltsCache
	remaining := time.Until(deadline)
	if remaining <= 0 {
		v.Kind = BudgetExceeded
		v.Detail = "check-deadline"
		return v
	}
	checker.MaxDuration = remaining
	res, err := checker.AcceptsTrace(csp.Call(ota.ObservedProcess), trace)
	if err != nil {
		var be *refine.BudgetError
		if errors.As(err, &be) {
			v.Kind = BudgetExceeded
			v.Detail = be.Phase
			return v
		}
		v.Kind = InterpreterError
		v.Detail = err.Error()
		return v
	}
	v.ModelStates = res.States
	if res.Accepted {
		v.Kind = Conforms
		return v
	}
	v.Kind = Diverges
	div := &Divergence{
		FailedAt: res.FailedAt,
		BadEvent: res.BadEvent.String(),
	}
	for _, ev := range res.Allowed {
		div.Allowed = append(div.Allowed, ev.String())
	}
	start := res.FailedAt + 1 - divergenceContextLen
	if start < 0 {
		start = 0
	}
	for _, ev := range trace[start : res.FailedAt+1] {
		div.Context = append(div.Context, ev.String())
	}
	v.Divergence = div
	return v
}
