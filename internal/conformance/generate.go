package conformance

import (
	"math/rand"

	"repro/internal/canbus"
)

// Generation bounds. Frame indices stay small so perturbations land in
// the early protocol window the horizon covers; at most one delayed
// replay per schedule keeps the reordering depth within what the
// bounded-fault channel model absorbs. The horizon is short on purpose:
// every perturbation fires within the first FrameSpan transmissions, so
// divergence (if any) surfaces shortly after, while checking cost grows
// with trace length times the budgeted channel's nondeterminism.
const (
	defaultMaxOps     = 4
	defaultFrameSpan  = 24
	defaultHorizon    = 50 * canbus.Millisecond
	maxDelayedReplays = 1
)

// GenConfig bounds schedule generation. The zero value selects the
// defaults.
type GenConfig struct {
	// Horizon is the simulated-time length of each run.
	Horizon canbus.Time
	// MaxOps bounds the perturbations per schedule.
	MaxOps int
	// FrameSpan bounds the completed-transmission index frame ops target.
	FrameSpan int
}

func (c GenConfig) withDefaults() GenConfig {
	if c.Horizon <= 0 {
		c.Horizon = defaultHorizon
	}
	if c.MaxOps <= 0 {
		c.MaxOps = defaultMaxOps
	}
	if c.FrameSpan <= 0 {
		c.FrameSpan = defaultFrameSpan
	}
	return c
}

// GenerateSchedule derives a perturbation schedule from the seed: every
// random decision comes from a rand.Source seeded with it, so the same
// (variant, seed, config) triple always yields the same schedule.
func GenerateSchedule(variant Variant, seed int64, cfg GenConfig) Schedule {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(seed))
	s := Schedule{
		Variant:   variant,
		Seed:      seed,
		HorizonUs: int64(cfg.Horizon),
	}
	nOps := rng.Intn(cfg.MaxOps + 1)
	delays := 0
	for i := 0; i < nOps; i++ {
		var op Op
		switch pick := rng.Intn(4); {
		case pick == 0 && variant.hasTimers():
			op = Op{
				Kind: OpJitterTimer,
				Node: "VMG",
				Nth:  rng.Intn(6),
				// Skewed toward shortening, which reorders retries into
				// still-healthy traffic.
				DeltaMs: int64(rng.Intn(121)) - 40,
			}
		case pick == 1:
			op = Op{Kind: OpDropFrame, Nth: rng.Intn(cfg.FrameSpan)}
		case pick == 2 && delays < maxDelayedReplays:
			delays++
			op = Op{
				Kind:    OpDelayFrame,
				Nth:     rng.Intn(cfg.FrameSpan),
				DelayUs: 500 + int64(rng.Intn(7500)),
			}
		default:
			op = Op{
				Kind:    OpDupFrame,
				Nth:     rng.Intn(cfg.FrameSpan),
				DelayUs: 200 + int64(rng.Intn(1800)),
			}
		}
		s.Ops = append(s.Ops, op)
	}
	return s
}
