package conformance

import (
	"bytes"
	"testing"

	"repro/internal/obs"
)

// TestSoakReportByteIdenticalWithObservability pins the observability
// contract: all instrumentation output goes to the observer (and from
// there to stderr or a trace file), never into the report, so a
// campaign with metrics, spans and progress fully enabled produces
// byte-identical reports to one with observability off.
func TestSoakReportByteIdenticalWithObservability(t *testing.T) {
	base := Config{Seed: 42, SchedulesPerVariant: 2, Gen: shortGen(), Workers: 2}
	ref, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	refJSON, err := ref.JSON()
	if err != nil {
		t.Fatal(err)
	}

	var trace, progress bytes.Buffer
	o := obs.New(
		obs.WithSpanRing(64),
		obs.WithSpanSink(obs.NewJSONLSink(&trace)),
		obs.WithProgress(obs.TextProgress(&progress), 0),
	)
	cfg := base
	cfg.Obs = o
	got, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	gotJSON, err := got.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(refJSON, gotJSON) {
		t.Errorf("JSON report differs with observability on:\n%s\n----\n%s", refJSON, gotJSON)
	}
	if ref.Text() != got.Text() {
		t.Error("text report differs with observability on")
	}

	// The observer actually recorded the campaign. Shrinking diverging
	// schedules replays RunSchedule, so the counter can exceed the number
	// of campaign verdicts but never undercount them.
	snap := o.Snapshot()
	if snap.Counters["conformance.schedules"] < int64(len(got.Verdicts)) {
		t.Errorf("schedules counter = %d, want >= %d", snap.Counters["conformance.schedules"], len(got.Verdicts))
	}
	if trace.Len() == 0 {
		t.Error("no spans reached the sink")
	}
	if progress.Len() == 0 {
		t.Error("no progress lines emitted")
	}
}
