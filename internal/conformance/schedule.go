// Package conformance is a seeded soak harness that checks the
// simulated CANoe network against the extracted CSP model: it generates
// randomized perturbation schedules (timer jitter, frame loss,
// duplication, delayed replay), runs them on the simulated bus, projects
// the delivered-frame trace into model events, and asks the refinement
// core whether the observed trace is a trace of the reference model
// composed with a bounded-fault channel. Divergent schedules are
// automatically shrunk to a minimal replayable reproduction. Every
// random decision derives from an explicit seed and every report is free
// of wall-clock data, so campaigns are byte-identical for a fixed master
// seed.
package conformance

import (
	"encoding/json"
	"fmt"

	"repro/internal/ota"
)

// Variant selects the gateway pair riding the simulated bus and the
// reference model the trace is checked against.
type Variant string

// Soak variants. Naive and hardened check an implementation against the
// model extracted from its own sources — the pipeline-faithfulness
// question. Flawed simulates the broken ECU (wrong reply message type)
// while checking against the model of the correct one: the
// model/implementation mismatch the harness exists to catch.
const (
	VariantNaive    Variant = "naive"
	VariantHardened Variant = "hardened"
	VariantFlawed   Variant = "flawed"
)

// Variants lists every soak variant in report order.
var Variants = []Variant{VariantNaive, VariantHardened, VariantFlawed}

// simSources returns the CAPL programs run in the simulation.
func (v Variant) simSources() (ecu, vmg string, err error) {
	switch v {
	case VariantNaive:
		return ota.ECUSource, ota.VMGSource, nil
	case VariantHardened:
		return ota.HardenedECUSource, ota.HardenedVMGSource, nil
	case VariantFlawed:
		return ota.FlawedECUSource, ota.VMGSource, nil
	}
	return "", "", fmt.Errorf("conformance: unknown variant %q", v)
}

// referenceConfig returns the observed-model configuration the trace is
// checked against (budgets are filled in per run).
func (v Variant) referenceConfig() (ota.ObservedConfig, error) {
	switch v {
	case VariantNaive, VariantFlawed:
		// The flawed ECU is checked against the correct reference model.
		return ota.ObservedConfigFor(ota.NaiveGateway, ota.ChannelBudgets{}), nil
	case VariantHardened:
		return ota.ObservedConfigFor(ota.HardenedGateway, ota.ChannelBudgets{}), nil
	}
	return ota.ObservedConfig{}, fmt.Errorf("conformance: unknown variant %q", v)
}

// hasTimers reports whether the simulated gateway uses CANoe timers
// (and therefore whether timer-jitter perturbations can fire).
func (v Variant) hasTimers() bool { return v == VariantHardened }

// OpKind is a perturbation class.
type OpKind string

// Perturbation classes. Frame ops are keyed by Nth, the 0-based index
// of the frame in the bus's completed-transmission order (fabricated
// replays count too); timer ops are keyed by Node plus Nth, the 0-based
// index among that node's setTimer calls.
const (
	// OpJitterTimer shifts the Nth setTimer interval of Node by DeltaMs
	// (clamped at zero).
	OpJitterTimer OpKind = "jitter-timer"
	// OpDropFrame destroys the Nth completed transmission.
	OpDropFrame OpKind = "drop-frame"
	// OpDupFrame re-injects a copy of the Nth completed transmission
	// DelayUs after its delivery.
	OpDupFrame OpKind = "dup-frame"
	// OpDelayFrame destroys the Nth completed transmission and
	// re-injects it DelayUs later — reordering it past later traffic.
	OpDelayFrame OpKind = "delay-frame"
)

// Op is one scheduled perturbation.
type Op struct {
	Kind    OpKind `json:"kind"`
	Nth     int    `json:"nth"`
	Node    string `json:"node,omitempty"`
	DeltaMs int64  `json:"deltaMs,omitempty"`
	DelayUs int64  `json:"delayUs,omitempty"`
}

// String renders the op compactly for reports.
func (o Op) String() string {
	switch o.Kind {
	case OpJitterTimer:
		return fmt.Sprintf("jitter-timer(%s#%d,%+dms)", o.Node, o.Nth, o.DeltaMs)
	case OpDropFrame:
		return fmt.Sprintf("drop-frame(#%d)", o.Nth)
	case OpDupFrame:
		return fmt.Sprintf("dup-frame(#%d,+%dus)", o.Nth, o.DelayUs)
	case OpDelayFrame:
		return fmt.Sprintf("delay-frame(#%d,+%dus)", o.Nth, o.DelayUs)
	}
	return string(o.Kind)
}

// Schedule is one replayable soak input: a variant, the seed it was
// generated from, a simulated-time horizon, and the perturbation list.
type Schedule struct {
	Variant   Variant `json:"variant"`
	Seed      int64   `json:"seed"`
	HorizonUs int64   `json:"horizonUs"`
	Ops       []Op    `json:"ops"`
}

// String is a one-line digest.
func (s Schedule) String() string {
	return fmt.Sprintf("%s seed=%d horizon=%dus ops=%d", s.Variant, s.Seed, s.HorizonUs, len(s.Ops))
}

// withOps returns a copy of the schedule with the given op list.
func (s Schedule) withOps(ops []Op) Schedule {
	out := s
	out.Ops = append([]Op(nil), ops...)
	return out
}

// EncodeJSON renders the schedule as indented JSON, the replay file
// format of cmd/soak.
func (s Schedule) EncodeJSON() ([]byte, error) {
	return json.MarshalIndent(s, "", "  ")
}

// DecodeSchedule parses a replay file.
func DecodeSchedule(data []byte) (Schedule, error) {
	var s Schedule
	if err := json.Unmarshal(data, &s); err != nil {
		return Schedule{}, fmt.Errorf("conformance: decode schedule: %w", err)
	}
	switch s.Variant {
	case VariantNaive, VariantHardened, VariantFlawed:
	default:
		return Schedule{}, fmt.Errorf("conformance: unknown variant %q in schedule", s.Variant)
	}
	if s.HorizonUs <= 0 {
		return Schedule{}, fmt.Errorf("conformance: schedule horizon must be positive, got %d", s.HorizonUs)
	}
	for i, op := range s.Ops {
		switch op.Kind {
		case OpJitterTimer, OpDropFrame, OpDupFrame, OpDelayFrame:
		default:
			return Schedule{}, fmt.Errorf("conformance: op %d has unknown kind %q", i, op.Kind)
		}
		if op.Nth < 0 {
			return Schedule{}, fmt.Errorf("conformance: op %d has negative index", i)
		}
	}
	return s, nil
}
