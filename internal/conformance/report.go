package conformance

import (
	"encoding/json"
	"fmt"
	"strings"
	"time"
)

// Config parameterises a soak campaign.
type Config struct {
	// Seed is the master seed; per-schedule seeds derive from it.
	Seed int64
	// SchedulesPerVariant replicates each variant (default 4).
	SchedulesPerVariant int
	// Variants restricts the gateway variants (default all three).
	Variants []Variant
	// Gen bounds schedule generation.
	Gen GenConfig
	// MaxStates, MaxDuration, MaxSimEvents configure the Runner.
	MaxStates    int
	MaxDuration  time.Duration
	MaxSimEvents int
	// NoShrink skips minimization of diverging schedules.
	NoShrink bool
}

func (c Config) withDefaults() Config {
	if c.SchedulesPerVariant <= 0 {
		c.SchedulesPerVariant = 4
	}
	if len(c.Variants) == 0 {
		c.Variants = Variants
	}
	c.Gen = c.Gen.withDefaults()
	return c
}

// scheduleSeed derives a per-schedule seed from the master seed (the
// splitmix64 increment decorrelates neighbouring indices).
func scheduleSeed(master int64, index int) int64 {
	return master + int64(index+1)*-0x61c8864680b583eb
}

// Report is a full soak campaign result: free of wall-clock data and
// map-ordered collections, so rendering is byte-identical for a fixed
// configuration.
type Report struct {
	MasterSeed int64 `json:"masterSeed"`
	HorizonUs  int64 `json:"horizonUs"`
	Schedules  int   `json:"schedules"`
	// Verdict tallies.
	Conforms          int `json:"conforms"`
	Diverges          int `json:"diverges"`
	BudgetExceeded    int `json:"budgetExceeded"`
	InterpreterErrors int `json:"interpreterErrors"`
	// Verdicts holds every schedule result in campaign order.
	Verdicts []Verdict `json:"verdicts"`
}

// Run executes the configured campaign: for every variant, generate the
// seeded schedules, run each through the conformance pipeline, and
// shrink whatever diverges.
func Run(cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	r, err := NewRunner()
	if err != nil {
		return nil, err
	}
	r.MaxStates = cfg.MaxStates
	if cfg.MaxDuration > 0 {
		r.MaxDuration = cfg.MaxDuration
	}
	if cfg.MaxSimEvents > 0 {
		r.MaxSimEvents = cfg.MaxSimEvents
	}

	rep := &Report{
		MasterSeed: cfg.Seed,
		HorizonUs:  int64(cfg.Gen.Horizon),
	}
	idx := 0
	for _, variant := range cfg.Variants {
		for repNo := 0; repNo < cfg.SchedulesPerVariant; repNo++ {
			s := GenerateSchedule(variant, scheduleSeed(cfg.Seed, idx), cfg.Gen)
			idx++
			v := r.RunSchedule(s)
			v.Name = fmt.Sprintf("%s-r%d", variant, repNo)
			if v.Kind == Diverges && !cfg.NoShrink {
				if shrunk, sv, err := r.Shrink(s); err == nil && v.Divergence != nil {
					shrunkCopy := shrunk
					v.Divergence.Shrunk = &shrunkCopy
					if sv.Divergence != nil {
						v.Divergence.ShrunkFailedAt = sv.Divergence.FailedAt
					}
				}
			}
			rep.Verdicts = append(rep.Verdicts, v)
			switch v.Kind {
			case Conforms:
				rep.Conforms++
			case Diverges:
				rep.Diverges++
			case BudgetExceeded:
				rep.BudgetExceeded++
			case InterpreterError:
				rep.InterpreterErrors++
			}
		}
	}
	rep.Schedules = len(rep.Verdicts)
	return rep, nil
}

// JSON renders the report as indented JSON.
func (r *Report) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

// Summary is a one-line digest.
func (r *Report) Summary() string {
	return fmt.Sprintf("%d schedules: %d conform, %d diverge, %d budget-exceeded, %d errors",
		r.Schedules, r.Conforms, r.Diverges, r.BudgetExceeded, r.InterpreterErrors)
}

// Text renders the report as a fixed-width table plus divergence
// details with the shrunk reproduction.
func (r *Report) Text() string {
	var b strings.Builder
	fmt.Fprintf(&b, "conformance soak: %d schedules (seed %d, horizon %dus)\n",
		r.Schedules, r.MasterSeed, r.HorizonUs)
	fmt.Fprintf(&b, "verdicts: %d conform, %d diverge, %d budget-exceeded, %d errors\n\n",
		r.Conforms, r.Diverges, r.BudgetExceeded, r.InterpreterErrors)

	nameW := len("schedule")
	for _, v := range r.Verdicts {
		if len(v.Name) > nameW {
			nameW = len(v.Name)
		}
	}
	fmt.Fprintf(&b, "%-*s  %-16s  %6s  %4s  %s\n", nameW, "schedule", "verdict", "frames", "ops", "detail")
	for _, v := range r.Verdicts {
		detail := v.Detail
		if v.Kind == Diverges && v.Divergence != nil {
			detail = fmt.Sprintf("event %d: %s not in model (allowed: %s)",
				v.Divergence.FailedAt, v.Divergence.BadEvent, strings.Join(v.Divergence.Allowed, ", "))
		}
		fmt.Fprintf(&b, "%-*s  %-16s  %6d  %4d  %s\n",
			nameW, v.Name, string(v.Kind), v.DeliveredFrames, len(v.AppliedOps), detail)
	}

	for _, v := range r.Verdicts {
		if v.Kind != Diverges || v.Divergence == nil || v.Divergence.Shrunk == nil {
			continue
		}
		s := v.Divergence.Shrunk
		fmt.Fprintf(&b, "\n%s shrunk reproduction: seed=%d horizon=%dus ops=[", v.Name, s.Seed, s.HorizonUs)
		for i, op := range s.Ops {
			if i > 0 {
				b.WriteString(" ")
			}
			b.WriteString(op.String())
		}
		fmt.Fprintf(&b, "] fails at event %d\n", v.Divergence.ShrunkFailedAt)
	}
	return b.String()
}
