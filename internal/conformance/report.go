package conformance

import (
	"encoding/json"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// Config parameterises a soak campaign.
type Config struct {
	// Seed is the master seed; per-schedule seeds derive from it.
	Seed int64
	// SchedulesPerVariant replicates each variant (default 4).
	SchedulesPerVariant int
	// Variants restricts the gateway variants (default all three).
	Variants []Variant
	// Gen bounds schedule generation.
	Gen GenConfig
	// MaxStates, MaxDuration, MaxSimEvents configure the Runner.
	MaxStates    int
	MaxDuration  time.Duration
	MaxSimEvents int
	// NoShrink skips minimization of diverging schedules.
	NoShrink bool
	// Workers is the number of schedules run concurrently; 0 means
	// GOMAXPROCS, 1 forces sequential execution. Schedules are pure
	// functions of their seeds and verdicts are aggregated in campaign
	// order, so the report is byte-identical at any worker count.
	Workers int
	// Obs receives campaign instrumentation (per-schedule spans, verdict
	// counters, progress heartbeats). nil disables it; the report is
	// byte-identical either way.
	Obs *obs.Observer
}

func (c Config) withDefaults() Config {
	if c.SchedulesPerVariant <= 0 {
		c.SchedulesPerVariant = 4
	}
	if len(c.Variants) == 0 {
		c.Variants = Variants
	}
	c.Gen = c.Gen.withDefaults()
	return c
}

// scheduleSeed derives a per-schedule seed from the master seed (the
// splitmix64 increment decorrelates neighbouring indices).
func scheduleSeed(master int64, index int) int64 {
	return master + int64(index+1)*-0x61c8864680b583eb
}

// Report is a full soak campaign result: free of wall-clock data and
// map-ordered collections, so rendering is byte-identical for a fixed
// configuration.
type Report struct {
	MasterSeed int64 `json:"masterSeed"`
	HorizonUs  int64 `json:"horizonUs"`
	Schedules  int   `json:"schedules"`
	// Verdict tallies.
	Conforms          int `json:"conforms"`
	Diverges          int `json:"diverges"`
	BudgetExceeded    int `json:"budgetExceeded"`
	InterpreterErrors int `json:"interpreterErrors"`
	// Verdicts holds every schedule result in campaign order.
	Verdicts []Verdict `json:"verdicts"`
}

// Run executes the configured campaign: for every variant, generate the
// seeded schedules, run each through the conformance pipeline (on a
// pool of cfg.Workers goroutines), and shrink whatever diverges.
// Verdicts are aggregated in campaign order, so the report is identical
// to a sequential run.
func Run(cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	r, err := NewRunner()
	if err != nil {
		return nil, err
	}
	r.MaxStates = cfg.MaxStates
	if cfg.MaxDuration > 0 {
		r.MaxDuration = cfg.MaxDuration
	}
	if cfg.MaxSimEvents > 0 {
		r.MaxSimEvents = cfg.MaxSimEvents
	}
	r.Obs = cfg.Obs
	r.ltsCache.Obs = cfg.Obs

	// The schedule list is fully determined by the seed before any run
	// starts; workers only fill verdict slots.
	type job struct {
		s    Schedule
		name string
	}
	var jobs []job
	idx := 0
	for _, variant := range cfg.Variants {
		for repNo := 0; repNo < cfg.SchedulesPerVariant; repNo++ {
			s := GenerateSchedule(variant, scheduleSeed(cfg.Seed, idx), cfg.Gen)
			idx++
			jobs = append(jobs, job{s: s, name: fmt.Sprintf("%s-r%d", variant, repNo)})
		}
	}

	runJob := func(j job) Verdict {
		v := r.RunSchedule(j.s)
		v.Name = j.name
		if v.Kind == Diverges && !cfg.NoShrink {
			if shrunk, sv, err := r.Shrink(j.s); err == nil && v.Divergence != nil {
				shrunkCopy := shrunk
				v.Divergence.Shrunk = &shrunkCopy
				if sv.Divergence != nil {
					v.Divergence.ShrunkFailedAt = sv.Divergence.FailedAt
				}
			}
		}
		return v
	}

	verdicts := make([]Verdict, len(jobs))
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}
	prog := cfg.Obs.Progress("conformance.run")
	var done atomic.Int64
	if workers <= 1 {
		for i, j := range jobs {
			verdicts[i] = runJob(j)
			prog.Tick(done.Add(1), obs.Int("schedules", int64(len(jobs))))
		}
	} else {
		var next atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				claimed := -1
				defer func() {
					// Panic isolation: a crashing schedule becomes an
					// interpreter-error verdict for that schedule alone; the
					// remaining jobs drain through the other workers.
					if r := recover(); r != nil && claimed >= 0 {
						verdicts[claimed] = Verdict{
							Name:     jobs[claimed].name,
							Schedule: jobs[claimed].s,
							Kind:     InterpreterError,
							Detail:   fmt.Sprintf("panic in schedule worker: %v", r),
						}
						prog.Tick(done.Add(1), obs.Int("schedules", int64(len(jobs))))
					}
				}()
				for {
					i := int(next.Add(1)) - 1
					if i >= len(jobs) {
						return
					}
					claimed = i
					verdicts[i] = runJob(jobs[i])
					prog.Tick(done.Add(1), obs.Int("schedules", int64(len(jobs))))
				}
			}()
		}
		wg.Wait()
	}
	prog.Flush(done.Load())

	rep := &Report{
		MasterSeed: cfg.Seed,
		HorizonUs:  int64(cfg.Gen.Horizon),
		Verdicts:   verdicts,
	}
	for _, v := range rep.Verdicts {
		switch v.Kind {
		case Conforms:
			rep.Conforms++
		case Diverges:
			rep.Diverges++
		case BudgetExceeded:
			rep.BudgetExceeded++
		case InterpreterError:
			rep.InterpreterErrors++
		}
	}
	rep.Schedules = len(rep.Verdicts)
	return rep, nil
}

// JSON renders the report as indented JSON.
func (r *Report) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

// Summary is a one-line digest.
func (r *Report) Summary() string {
	return fmt.Sprintf("%d schedules: %d conform, %d diverge, %d budget-exceeded, %d errors",
		r.Schedules, r.Conforms, r.Diverges, r.BudgetExceeded, r.InterpreterErrors)
}

// Text renders the report as a fixed-width table plus divergence
// details with the shrunk reproduction.
func (r *Report) Text() string {
	var b strings.Builder
	fmt.Fprintf(&b, "conformance soak: %d schedules (seed %d, horizon %dus)\n",
		r.Schedules, r.MasterSeed, r.HorizonUs)
	fmt.Fprintf(&b, "verdicts: %d conform, %d diverge, %d budget-exceeded, %d errors\n\n",
		r.Conforms, r.Diverges, r.BudgetExceeded, r.InterpreterErrors)

	nameW := len("schedule")
	for _, v := range r.Verdicts {
		if len(v.Name) > nameW {
			nameW = len(v.Name)
		}
	}
	fmt.Fprintf(&b, "%-*s  %-16s  %6s  %4s  %s\n", nameW, "schedule", "verdict", "frames", "ops", "detail")
	for _, v := range r.Verdicts {
		detail := v.Detail
		if v.Kind == Diverges && v.Divergence != nil {
			detail = fmt.Sprintf("event %d: %s not in model (allowed: %s)",
				v.Divergence.FailedAt, v.Divergence.BadEvent, strings.Join(v.Divergence.Allowed, ", "))
		}
		fmt.Fprintf(&b, "%-*s  %-16s  %6d  %4d  %s\n",
			nameW, v.Name, string(v.Kind), v.DeliveredFrames, len(v.AppliedOps), detail)
	}

	for _, v := range r.Verdicts {
		if v.Kind != Diverges || v.Divergence == nil || v.Divergence.Shrunk == nil {
			continue
		}
		s := v.Divergence.Shrunk
		fmt.Fprintf(&b, "\n%s shrunk reproduction: seed=%d horizon=%dus ops=[", v.Name, s.Seed, s.HorizonUs)
		for i, op := range s.Ops {
			if i > 0 {
				b.WriteString(" ")
			}
			b.WriteString(op.String())
		}
		fmt.Fprintf(&b, "] fails at event %d\n", v.Divergence.ShrunkFailedAt)
	}
	return b.String()
}
