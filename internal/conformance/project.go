package conformance

import (
	"fmt"

	"repro/internal/canbus"
	"repro/internal/candb"
	"repro/internal/canoe"
	"repro/internal/csp"
	"repro/internal/ota"
)

// Projector maps delivered bus frames onto observed-model events using
// the CAN database: the identifier names the message, the message name
// (through the CAPL/X.1373 renaming) names the datatype constructor,
// and the sending node picks the delivered-side channel.
type Projector struct {
	byID map[uint32]csp.Event
}

// NewProjector builds the projection dictionary from a CAN database.
// senderChan maps each sending node to the channel its deliveries
// appear on; rename maps CAPL message-variable names to constructor
// names (pass nil to use the variable names directly).
func NewProjector(db *candb.Database, rename map[string]string, senderChan map[string]string) (*Projector, error) {
	p := &Projector{byID: make(map[uint32]csp.Event, len(db.Messages))}
	for _, m := range db.Messages {
		ch, ok := senderChan[m.Sender]
		if !ok {
			return nil, fmt.Errorf("conformance: message %s has unmapped sender %q", m.Name, m.Sender)
		}
		ctor := candb.CtorName(m.Name)
		if renamed, ok := rename[ctor]; ok {
			ctor = renamed
		}
		if _, dup := p.byID[m.ID]; dup {
			return nil, fmt.Errorf("conformance: duplicate identifier 0x%03X in database", m.ID)
		}
		p.byID[m.ID] = csp.Event{Chan: ch, Args: []csp.Value{csp.Sym(ctor)}}
	}
	return p, nil
}

// NewOTAProjector builds the projector for the OTA case study: Table II
// identifiers onto the observed-model channels.
func NewOTAProjector() (*Projector, error) {
	db, err := ota.Database()
	if err != nil {
		return nil, fmt.Errorf("conformance: parse OTA database: %w", err)
	}
	return NewProjector(db, ota.MessageRename, map[string]string{
		"VMG": ota.ObservedToECU,
		"ECU": ota.ObservedToVMG,
	})
}

// Frame projects a single delivered frame.
func (p *Projector) Frame(f canbus.Frame) (csp.Event, error) {
	ev, ok := p.byID[f.ID]
	if !ok {
		return csp.Event{}, fmt.Errorf("conformance: identifier 0x%03X not in database", f.ID)
	}
	return ev, nil
}

// Direction returns the delivered-side channel of the identifier, or ""
// if unknown — used to attribute fault budgets.
func (p *Projector) Direction(id uint32) string {
	if ev, ok := p.byID[id]; ok {
		return ev.Chan
	}
	return ""
}

// Trace projects a monitor trace into the observed event sequence.
func (p *Projector) Trace(tfs []canoe.TimedFrame) (csp.Trace, error) {
	out := make(csp.Trace, 0, len(tfs))
	for i, tf := range tfs {
		ev, err := p.Frame(tf.Frame)
		if err != nil {
			return nil, fmt.Errorf("frame %d at t=%dus: %w", i, int64(tf.At), err)
		}
		out = append(out, ev)
	}
	return out, nil
}
