package conformance

import (
	"bytes"
	"testing"
)

// TestSoakReportByteIdenticalAcrossWorkerCounts pins the parallelism
// contract: schedules are generated from the master seed before any
// worker starts and verdicts are aggregated in campaign order, so the
// soak report never depends on scheduling.
func TestSoakReportByteIdenticalAcrossWorkerCounts(t *testing.T) {
	base := Config{Seed: 42, SchedulesPerVariant: 2, Gen: shortGen(), Workers: 1}
	ref, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	refJSON, err := ref.JSON()
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{0, 2, 4} {
		cfg := base
		cfg.Workers = workers
		got, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		gotJSON, err := got.JSON()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(refJSON, gotJSON) {
			t.Errorf("workers=%d JSON differs from sequential run:\n%s\n----\n%s",
				workers, refJSON, gotJSON)
		}
		if ref.Text() != got.Text() {
			t.Errorf("workers=%d text report differs from sequential run", workers)
		}
	}
}
