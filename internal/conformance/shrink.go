package conformance

import "fmt"

// Shrink minimizes a diverging schedule to a small reproducing input:
// delta-debugging over the perturbation list (greedy removal to a
// one-minimal op set — every remaining op is necessary for the
// divergence) followed by binary-search reduction of the simulated-time
// horizon to the smallest millisecond still diverging. Shrinking is a
// pure function of the schedule: re-running the shrunk schedule
// reproduces the divergence exactly.
//
// It returns the minimal schedule and its verdict. A schedule that does
// not diverge is returned unchanged together with its verdict and an
// error.
func (r *Runner) Shrink(s Schedule) (Schedule, Verdict, error) {
	v := r.RunSchedule(s)
	if v.Kind != Diverges {
		return s, v, fmt.Errorf("conformance: schedule does not diverge (verdict %s)", v.Kind)
	}
	cur, curV := s, v

	// Phase 1: one-minimal perturbation set.
	for changed := true; changed; {
		changed = false
		for i := range cur.Ops {
			cand := cur.withOps(append(append([]Op(nil), cur.Ops[:i]...), cur.Ops[i+1:]...))
			if cv := r.RunSchedule(cand); cv.Kind == Diverges {
				cur, curV = cand, cv
				changed = true
				break
			}
		}
	}

	// Phase 2: smallest horizon (in whole milliseconds) still diverging.
	lo, hi := int64(1), cur.HorizonUs/1000
	for lo <= hi {
		mid := (lo + hi) / 2
		cand := cur
		cand.HorizonUs = mid * 1000
		if cv := r.RunSchedule(cand); cv.Kind == Diverges {
			cur, curV = cand, cv
			hi = mid - 1
		} else {
			lo = mid + 1
		}
	}
	return cur, curV, nil
}
