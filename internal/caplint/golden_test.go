package caplint

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/candb"
)

var update = flag.Bool("update", false, "rewrite the golden diagnostic files")

// TestGolden pins the analyzer's exact findings — code, severity,
// position and message — over the whole CAPL corpus. The clean files
// must stay clean (the strict-extraction gate depends on it) and the
// seeded files must keep every defect class visible.
func TestGolden(t *testing.T) {
	cases := []struct {
		name string
		src  string
		dbc  string
	}{
		{"ecu", "../../testdata/ecu.can", "../../testdata/ota.dbc"},
		{"flawed_ecu", "../../testdata/flawed_ecu.can", "../../testdata/ota.dbc"},
		{"vmg", "../../testdata/vmg.can", "../../testdata/ota.dbc"},
		{"vmg_timer", "../../testdata/vmg_timer.can", "../../testdata/ota.dbc"},
		{"capl_ecu", "../capl/testdata/ecu.can", ""},
		{"capl_timer", "../capl/testdata/timer.can", ""},
		{"malformed", "../capl/testdata/malformed.can", ""},
		{"flawed_gateway", "../../examples/caplcheck/flawed_gateway.can", "../../testdata/ota.dbc"},
		{"ill_typed", "../../examples/caplcheck/ill_typed.can", "../../testdata/ota.dbc"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			src, err := os.ReadFile(tc.src)
			if err != nil {
				t.Fatal(err)
			}
			var opts Options
			if tc.dbc != "" {
				dbSrc, err := os.ReadFile(tc.dbc)
				if err != nil {
					t.Fatal(err)
				}
				opts.DB, err = candb.Parse(string(dbSrc))
				if err != nil {
					t.Fatal(err)
				}
			}
			// Report positions under the base name so golden files do not
			// depend on the test's relative path layout.
			diags := AnalyzeSource(filepath.Base(tc.src), string(src), opts)
			var b strings.Builder
			for _, d := range diags {
				b.WriteString(d.String())
				b.WriteByte('\n')
			}
			got := b.String()

			goldenPath := filepath.Join("testdata", "golden", tc.name+".diag")
			if *update {
				if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(goldenPath, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(goldenPath)
			if err != nil {
				t.Fatalf("%v (run `go test ./internal/caplint -update` to create)", err)
			}
			if got != string(want) {
				t.Errorf("diagnostics changed:\n--- got ---\n%s--- want ---\n%s", got, want)
			}
		})
	}
}

// TestCleanCorpusStaysClean is the load-bearing invariant behind
// `capl2cspm -strict`: the paper's extraction corpus must produce zero
// findings, or strict mode would refuse valid models.
func TestCleanCorpusStaysClean(t *testing.T) {
	dbSrc, err := os.ReadFile("../../testdata/ota.dbc")
	if err != nil {
		t.Fatal(err)
	}
	db, err := candb.Parse(string(dbSrc))
	if err != nil {
		t.Fatal(err)
	}
	for _, path := range []string{
		"../../testdata/ecu.can",
		"../../testdata/flawed_ecu.can", // flawed at the protocol level, lint-clean
		"../../testdata/vmg.can",
		"../../testdata/vmg_timer.can",
	} {
		src, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if diags := AnalyzeSource(path, string(src), Options{DB: db}); len(diags) != 0 {
			t.Errorf("%s: unexpected findings: %v", path, diags)
		}
	}
}
