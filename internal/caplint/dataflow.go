package caplint

import (
	"sort"

	"repro/internal/capl"
)

// The dataflow pass runs three analyses over each body's CFG:
//
//   - reachability        -> CAPL0004 unreachable statement
//   - backward liveness   -> CAPL0005 dead store
//   - forward must-assign -> CAPL0006 read before any assignment
//
// Only scalar, non-array locals participate in the value analyses:
// globals carry state between handlers, arrays and message objects see
// weak updates, and parameters arrive assigned. A name declared in two
// different blocks of the same body is skipped entirely (the analyses
// are name- rather than scope-based, so shadowing would conflate them).

type localInfo struct {
	hasInit  bool
	zeroInit bool // initialiser is the constant 0 (idiomatic clear)
	isParam  bool
	skip     bool // shadowed, array, or non-scalar
}

// checkFlow builds a CFG per handler and function body and runs the
// three analyses.
func (a *analysis) checkFlow() {
	for _, h := range a.prog.Handlers {
		a.flowBody(h.Body, nil)
	}
	for _, f := range a.prog.Functions {
		a.flowBody(f.Body, f.Params)
	}
}

func (a *analysis) flowBody(body *capl.BlockStmt, params []*capl.VarDecl) {
	if body == nil {
		return
	}
	g := buildCFG(body)
	locals := collectLocals(body, params)

	a.reportUnreachable(g)

	// Per-node use/def sets over the participating locals.
	uses := make([]map[string]bool, len(g.nodes))
	defs := make([]map[string]bool, len(g.nodes))
	stores := make([]map[string]pos, len(g.nodes))
	declInits := make([]map[string]bool, len(g.nodes))
	for _, n := range g.nodes {
		u, d, st, di := nodeUseDef(n, locals)
		uses[n.id], defs[n.id], stores[n.id], declInits[n.id] = u, d, st, di
	}

	a.reportDeadStores(g, locals, uses, defs, stores)
	a.reportUninitReads(g, locals, uses, defs, declInits, params)
}

// collectLocals gathers the body's declared locals and parameters,
// marking names the analyses must skip.
func collectLocals(body *capl.BlockStmt, params []*capl.VarDecl) map[string]*localInfo {
	locals := map[string]*localInfo{}
	for _, p := range params {
		locals[p.Name] = &localInfo{hasInit: true, isParam: true, skip: len(p.Type.ArrayDims) > 0}
	}
	var walk func(s capl.Stmt)
	walk = func(s capl.Stmt) {
		switch x := s.(type) {
		case *capl.BlockStmt:
			for _, st := range x.Stmts {
				walk(st)
			}
		case *capl.DeclStmt:
			for _, d := range x.Decls {
				if prev, ok := locals[d.Name]; ok {
					prev.skip = true // shadowing across blocks
					continue
				}
				zero := false
				if v, isConst := constEvalLint(d.Init); isConst && v == 0 {
					zero = true
				}
				locals[d.Name] = &localInfo{
					hasInit:  d.Init != nil,
					zeroInit: zero,
					skip: len(d.Type.ArrayDims) > 0 ||
						d.Type.Base == capl.TypeMessage ||
						d.Type.Base == capl.TypeMsTimer ||
						d.Type.Base == capl.TypeTimer,
				}
			}
		case *capl.IfStmt:
			walk(x.Then)
			if x.Else != nil {
				walk(x.Else)
			}
		case *capl.WhileStmt:
			walk(x.Body)
		case *capl.DoWhileStmt:
			walk(x.Body)
		case *capl.ForStmt:
			if x.Init != nil {
				walk(x.Init)
			}
			walk(x.Body)
		case *capl.SwitchStmt:
			for _, c := range x.Cases {
				for _, st := range c.Stmts {
					walk(st)
				}
			}
		}
	}
	walk(body)
	return locals
}

// tracked reports whether the name participates in the value analyses.
func tracked(locals map[string]*localInfo, name string) bool {
	li, ok := locals[name]
	return ok && !li.skip
}

// nodeUseDef extracts the node's variable reads (uses), strong writes
// (defs), reportable store sites (stores) and declaration initialisers
// (declInits) over the tracked locals.
func nodeUseDef(n *cfgNode, locals map[string]*localInfo) (uses, defs map[string]bool, stores map[string]pos, declInits map[string]bool) {
	uses = map[string]bool{}
	defs = map[string]bool{}
	stores = map[string]pos{}
	declInits = map[string]bool{}

	var walkExpr func(e capl.Expr)
	walkExpr = func(e capl.Expr) {
		switch x := e.(type) {
		case *capl.Ident:
			if tracked(locals, x.Name) {
				uses[x.Name] = true
			}
		case *capl.BinaryExpr:
			walkExpr(x.L)
			walkExpr(x.R)
		case *capl.UnaryExpr:
			if x.Op == capl.INC || x.Op == capl.DEC {
				if id, ok := x.X.(*capl.Ident); ok && tracked(locals, id.Name) {
					uses[id.Name] = true
					defs[id.Name] = true
					return
				}
			}
			walkExpr(x.X)
		case *capl.PostfixExpr:
			if id, ok := x.X.(*capl.Ident); ok && tracked(locals, id.Name) {
				uses[id.Name] = true
				defs[id.Name] = true
				return
			}
			walkExpr(x.X)
		case *capl.AssignExpr:
			walkExpr(x.R)
			switch l := x.L.(type) {
			case *capl.Ident:
				if tracked(locals, l.Name) {
					if x.Op != capl.ASSIGN {
						uses[l.Name] = true // compound assignment reads first
					}
					defs[l.Name] = true
					stores[l.Name] = pos{x.Line, x.Col}
				}
			default:
				// Member/index writes are weak updates: the base object
				// stays live and is also read.
				walkExpr(x.L)
			}
		case *capl.CondExpr:
			walkExpr(x.Cond)
			walkExpr(x.Then)
			walkExpr(x.Else)
		case *capl.CallExpr:
			for _, arg := range x.Args {
				walkExpr(arg)
			}
		case *capl.MemberExpr:
			walkExpr(x.X)
			for _, arg := range x.Args {
				walkExpr(arg)
			}
		case *capl.IndexExpr:
			walkExpr(x.X)
			walkExpr(x.Index)
		}
	}

	switch {
	case n.cond != nil:
		walkExpr(n.cond)
	case n.stmt != nil:
		switch s := n.stmt.(type) {
		case *capl.ExprStmt:
			walkExpr(s.X)
		case *capl.ReturnStmt:
			walkExpr(s.X)
		case *capl.DeclStmt:
			for _, d := range s.Decls {
				if d.Init == nil {
					continue
				}
				walkExpr(d.Init)
				if tracked(locals, d.Name) {
					defs[d.Name] = true
					declInits[d.Name] = true
					li := locals[d.Name]
					if !li.zeroInit {
						stores[d.Name] = pos{d.Line, d.Col}
					}
				}
			}
		}
	}
	return uses, defs, stores, declInits
}

// reportUnreachable flags the first statement of each maximal
// unreachable region (CAPL0004).
func (a *analysis) reportUnreachable(g *cfg) {
	seen := g.reachable()
	reportable := func(n *cfgNode) bool { return n.stmt != nil || n.cond != nil }
	for _, n := range g.nodes {
		if seen[n.id] || !reportable(n) {
			continue
		}
		// Report only region heads, so one finding covers a whole dead
		// region: a head has no unreachable reportable predecessor.
		head := true
		for _, p := range n.preds {
			if !seen[p.id] && reportable(p) {
				head = false
				break
			}
		}
		if head {
			a.report(CodeUnreachable, SevWarning, n.at.line, n.at.col,
				"statement can never execute")
		}
	}
}

// reportDeadStores runs backward liveness and flags stores whose value
// is never read (CAPL0005).
func (a *analysis) reportDeadStores(g *cfg, locals map[string]*localInfo, uses, defs []map[string]bool, stores []map[string]pos) {
	liveIn := make([]map[string]bool, len(g.nodes))
	for i := range liveIn {
		liveIn[i] = map[string]bool{}
	}
	changed := true
	for changed {
		changed = false
		for i := len(g.nodes) - 1; i >= 0; i-- {
			n := g.nodes[i]
			out := map[string]bool{}
			for _, s := range n.succs {
				for v := range liveIn[s.id] {
					out[v] = true
				}
			}
			in := map[string]bool{}
			for v := range uses[n.id] {
				in[v] = true
			}
			for v := range out {
				if !defs[n.id][v] {
					in[v] = true
				}
			}
			if !sameSet(in, liveIn[n.id]) {
				liveIn[n.id] = in
				changed = true
			}
		}
	}
	seen := g.reachable()
	type finding struct {
		at   pos
		name string
	}
	var found []finding
	for _, n := range g.nodes {
		if !seen[n.id] {
			continue // unreachable code is already reported
		}
		out := map[string]bool{}
		for _, s := range n.succs {
			for v := range liveIn[s.id] {
				out[v] = true
			}
		}
		for v, at := range stores[n.id] {
			if !out[v] {
				found = append(found, finding{at, v})
			}
		}
	}
	sort.Slice(found, func(i, j int) bool {
		if found[i].at.line != found[j].at.line {
			return found[i].at.line < found[j].at.line
		}
		return found[i].name < found[j].name
	})
	for _, f := range found {
		a.report(CodeDeadStore, SevWarning, f.at.line, f.at.col,
			"value stored to %q is never read", f.name)
	}
}

// reportUninitReads runs forward must-assigned analysis and flags reads
// of locals before any assignment (CAPL0006). CAPL zero-initialises,
// so this is a warning about intent, not undefined behaviour.
func (a *analysis) reportUninitReads(g *cfg, locals map[string]*localInfo, uses, defs []map[string]bool, declInits []map[string]bool, params []*capl.VarDecl) {
	// Universe: tracked locals declared without an initialiser.
	watch := map[string]bool{}
	for name, li := range locals {
		if !li.skip && !li.hasInit && !li.isParam {
			watch[name] = true
		}
	}
	if len(watch) == 0 {
		return
	}
	// assignedIn[n] = set of watched vars definitely assigned on every
	// path reaching n. Initialised to the universe and shrunk to a
	// greatest fixpoint.
	assignedIn := make([]map[string]bool, len(g.nodes))
	for i := range assignedIn {
		assignedIn[i] = copySet(watch)
	}
	assignedIn[g.entry.id] = map[string]bool{}
	changed := true
	for changed {
		changed = false
		for _, n := range g.nodes {
			if n == g.entry {
				continue
			}
			var in map[string]bool
			if len(n.preds) == 0 {
				in = copySet(watch) // unreachable: assume assigned
			} else {
				in = nil
				for _, p := range n.preds {
					outP := copySet(assignedIn[p.id])
					for v := range defs[p.id] {
						outP[v] = true
					}
					for v := range declInits[p.id] {
						outP[v] = true
					}
					if in == nil {
						in = outP
					} else {
						in = intersect(in, outP)
					}
				}
			}
			if !sameSet(in, assignedIn[n.id]) {
				assignedIn[n.id] = in
				changed = true
			}
		}
	}
	reported := map[string]bool{}
	type finding struct {
		at   pos
		name string
	}
	var found []finding
	seen := g.reachable()
	for _, n := range g.nodes {
		if !seen[n.id] {
			continue
		}
		for v := range uses[n.id] {
			if watch[v] && !assignedIn[n.id][v] {
				found = append(found, finding{n.at, v})
			}
		}
	}
	sort.Slice(found, func(i, j int) bool {
		if found[i].at.line != found[j].at.line {
			return found[i].at.line < found[j].at.line
		}
		return found[i].name < found[j].name
	})
	for _, f := range found {
		if reported[f.name] {
			continue
		}
		reported[f.name] = true
		a.report(CodeUninitRead, SevWarning, f.at.line, f.at.col,
			"%q read before any assignment (CAPL zero-initialises; assign explicitly if intended)", f.name)
	}
}

func sameSet(a, b map[string]bool) bool {
	if len(a) != len(b) {
		return false
	}
	for v := range a {
		if !b[v] {
			return false
		}
	}
	return true
}

func copySet(s map[string]bool) map[string]bool {
	out := make(map[string]bool, len(s))
	for v := range s {
		out[v] = true
	}
	return out
}

func intersect(a, b map[string]bool) map[string]bool {
	out := map[string]bool{}
	for v := range a {
		if b[v] {
			out[v] = true
		}
	}
	return out
}
