package caplint

import (
	"strings"
	"testing"
)

// TestDefectClasses exercises each diagnostic code on a minimal
// program, complementing the corpus golden tests with targeted cases
// for the codes the corpus does not reach.
func TestDefectClasses(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want []string // codes that must appear
	}{
		{"duplicate-global", `variables { int x; int x; }`,
			[]string{CodeDuplicateDecl}},
		{"duplicate-local", `on start { int x; int x; x = 1; }`,
			[]string{CodeDuplicateDecl}},
		{"undeclared", `on start { x = 1; }`,
			[]string{CodeUndeclared}},
		{"use-before-decl", `on start { x = 1; int x; }`,
			[]string{CodeUseBeforeDecl}},
		{"unreachable", `variables { message 0x1 m; }
			on start { return; output(m); }`,
			[]string{CodeUnreachable}},
		{"unreachable-const-branch", `variables { int x; }
			on start { if (0) { x = 1; } }`,
			[]string{CodeUnreachable}},
		{"dead-store", `on start { int x; x = 1; x = 2; write("%d", x); }`,
			[]string{CodeDeadStore}},
		{"uninit-read", `on start { int x; int y; y = x + 1; write("%d", y); }`,
			[]string{CodeUninitRead}},
		{"unknown-func", `on start { frobnicate(); }`,
			[]string{CodeUnknownFunc}},
		{"orphan-timer", `variables { msTimer t; }
			on start { setTimer(t, 10); }`,
			[]string{CodeOrphanTimer}},
		{"unfired-timer", `variables { msTimer t; }
			on timer t { write("tick"); }`,
			[]string{CodeUnfiredTimer}},
		{"bad-timer-arg", `variables { int x; }
			on start { setTimer(x, 10); }`,
			[]string{CodeBadTimerArg}},
		{"bad-output-arg", `variables { int x; }
			on start { output(x); }`,
			[]string{CodeBadOutputArg}},
		{"bad-output-arity", `variables { message 0x1 m; }
			on start { output(m, m); }`,
			[]string{CodeBadOutputArity}},
		{"unknown-msg-target", `on message ghost { write("x"); }`,
			[]string{CodeUnknownMsgVar}},
		{"abstracted-cond", `variables { message 0x1 m; int x; }
			on start { if (x > 0) { output(m); } }`,
			[]string{CodeAbstractedCond}},
		{"abstracted-loop", `variables { message 0x1 m; int i; }
			on start { while (i < 3) { output(m); i = i + 1; } }`,
			[]string{CodeAbstractedLoop}},
		{"dropped-handler", `on key 'a' { write("key"); }`,
			[]string{CodeDroppedHandler}},
		{"inexact-duration", `variables { msTimer t; int d; }
			on timer t { setTimer(t, d); }`,
			[]string{CodeInexactDuration}},
		{"recursive", `void f() { f(); }
			on start { f(); }`,
			[]string{CodeRecursiveFunc}},
		{"this-outside-msg", `on start { this.byte(0) = 1; }`,
			[]string{CodeThisOutsideMsg}},
		{"parse-error", "'\\", []string{CodeParse}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			diags := AnalyzeSource(tc.name+".can", tc.src, Options{})
			got := map[string]bool{}
			for _, d := range diags {
				got[d.Code] = true
			}
			for _, code := range tc.want {
				if !got[code] {
					t.Errorf("missing %s; got %v", code, diags)
				}
			}
		})
	}
}

// TestCleanSnippets pins programs that must NOT trip specific lints:
// the analyzer's value depends as much on its silence as its noise.
func TestCleanSnippets(t *testing.T) {
	cases := []struct {
		name    string
		src     string
		notWant string
	}{
		// `this` inside an on message handler is the idiomatic reply form.
		{"this-in-msg", `variables { message 0x1 m; }
			on message m { output(this); }`, CodeThisOutsideMsg},
		// A constant condition is folded, not abstracted.
		{"const-cond", `variables { message 0x1 m; }
			on start { if (1) { output(m); } }`, CodeAbstractedCond},
		// Zero-initialisation via declaration is not a dead store.
		{"decl-init-zero", `on start { int x = 0; x = 1; write("%d", x); }`,
			CodeDeadStore},
		// Globals keep state across handlers: never dataflow-checked.
		{"global-state", `variables { int seen; }
			on start { seen = seen + 1; }`, CodeUninitRead},
		// A set timer with a matching handler is the intended protocol.
		{"timer-pair", `variables { msTimer t; }
			on start { setTimer(t, 10); }
			on timer t { write("tick"); }`, CodeOrphanTimer},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			for _, d := range AnalyzeSource(tc.name+".can", tc.src, Options{}) {
				if d.Code == tc.notWant {
					t.Errorf("false positive %v", d)
				}
			}
		})
	}
}

// TestDiagnosticsAreDeduped: a helper inlined at two call sites must
// report its own findings once.
func TestDiagnosticsAreDeduped(t *testing.T) {
	src := `void helper() { frobnicate(); }
		on start { helper(); }
		on stopMeasurement { helper(); }`
	diags := AnalyzeSource("dedupe.can", src, Options{})
	n := 0
	for _, d := range diags {
		if d.Code == CodeUnknownFunc && strings.Contains(d.Msg, "frobnicate") {
			n++
		}
	}
	if n != 1 {
		t.Errorf("frobnicate reported %d times, want 1:\n%v", n, diags)
	}
}
