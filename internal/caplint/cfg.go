package caplint

import "repro/internal/capl"

// The control-flow pass builds a statement-granular CFG per handler and
// function body. Each simple statement and each branch condition is one
// node; reachability over the graph yields CAPL0004, and the dataflow
// pass (dataflow.go) runs worklist analyses over the same graph.

type cfgNode struct {
	id int
	// Exactly one of stmt/cond is set; the synthetic entry/exit nodes
	// have neither.
	stmt  capl.Stmt
	cond  capl.Expr
	at    pos
	succs []*cfgNode
	preds []*cfgNode
}

type cfg struct {
	entry, exit *cfgNode
	nodes       []*cfgNode
}

type cfgBuilder struct {
	g *cfg
	// breakTargets/continueTargets are stacks of pending edge lists:
	// break/continue nodes attach to the innermost enclosing target.
	breakNodes    [][]*cfgNode
	continueNodes [][]*cfgNode
}

func (b *cfgBuilder) newNode(stmt capl.Stmt, cond capl.Expr, at pos) *cfgNode {
	n := &cfgNode{id: len(b.g.nodes), stmt: stmt, cond: cond, at: at}
	b.g.nodes = append(b.g.nodes, n)
	return n
}

func edge(from, to *cfgNode) {
	from.succs = append(from.succs, to)
	to.preds = append(to.preds, from)
}

func connect(preds []*cfgNode, to *cfgNode) {
	for _, p := range preds {
		edge(p, to)
	}
}

// buildCFG constructs the graph for one body.
func buildCFG(body *capl.BlockStmt) *cfg {
	g := &cfg{}
	b := &cfgBuilder{g: g}
	g.entry = b.newNode(nil, nil, pos{})
	g.exit = b.newNode(nil, nil, pos{})
	out := b.stmtList(body.Stmts, []*cfgNode{g.entry})
	connect(out, g.exit)
	return g
}

// stmtList threads control through the statements in order. in is the
// set of nodes whose control falls into the list; the return value is
// the set that falls out the end.
func (b *cfgBuilder) stmtList(list []capl.Stmt, in []*cfgNode) []*cfgNode {
	cur := in
	for _, s := range list {
		cur = b.stmt(s, cur)
	}
	return cur
}

func (b *cfgBuilder) stmt(s capl.Stmt, in []*cfgNode) []*cfgNode {
	switch x := s.(type) {
	case *capl.BlockStmt:
		return b.stmtList(x.Stmts, in)

	case *capl.DeclStmt:
		n := b.newNode(x, nil, pos{x.Line, x.Col})
		connect(in, n)
		return []*cfgNode{n}

	case *capl.ExprStmt:
		n := b.newNode(x, nil, pos{x.Line, x.Col})
		connect(in, n)
		return []*cfgNode{n}

	case *capl.ReturnStmt:
		n := b.newNode(x, nil, pos{x.Line, x.Col})
		connect(in, n)
		edge(n, b.g.exit)
		return nil

	case *capl.BreakStmt:
		n := b.newNode(x, nil, pos{x.Line, x.Col})
		connect(in, n)
		if k := len(b.breakNodes); k > 0 {
			b.breakNodes[k-1] = append(b.breakNodes[k-1], n)
		} else {
			edge(n, b.g.exit) // stray break; keep the graph total
		}
		return nil

	case *capl.ContinueStmt:
		n := b.newNode(x, nil, pos{x.Line, x.Col})
		connect(in, n)
		if k := len(b.continueNodes); k > 0 {
			b.continueNodes[k-1] = append(b.continueNodes[k-1], n)
		} else {
			edge(n, b.g.exit)
		}
		return nil

	case *capl.IfStmt:
		c := b.newNode(nil, x.Cond, pos{x.Line, x.Col})
		connect(in, c)
		// Constant conditions prune an arm (the translator folds them
		// too); the pruned arm is still built so its statements exist
		// as unreachable nodes.
		v, isConst := constEvalLint(x.Cond)
		thenIn, elseIn := []*cfgNode{c}, []*cfgNode{c}
		if isConst {
			if v != 0 {
				elseIn = nil
			} else {
				thenIn = nil
			}
		}
		out := b.stmt(x.Then, thenIn)
		if x.Else != nil {
			out = append(out, b.stmt(x.Else, elseIn)...)
		} else {
			out = append(out, elseIn...)
		}
		return out

	case *capl.WhileStmt:
		c := b.newNode(nil, x.Cond, pos{x.Line, x.Col})
		connect(in, c)
		b.pushLoop()
		v, isConst := constEvalLint(x.Cond)
		bodyIn := []*cfgNode{c}
		if isConst && v == 0 {
			bodyIn = nil
		}
		bodyOut := b.stmt(x.Body, bodyIn)
		breaks, continues := b.popLoop()
		connect(bodyOut, c)
		connect(continues, c)
		out := breaks
		if !(isConst && v != 0) {
			out = append(out, c) // loop may be skipped or exited
		}
		return out

	case *capl.DoWhileStmt:
		c := b.newNode(nil, x.Cond, pos{x.Line, x.Col})
		b.pushLoop()
		bodyOut := b.stmt(x.Body, append(in, c))
		breaks, continues := b.popLoop()
		connect(bodyOut, c)
		connect(continues, c)
		v, isConst := constEvalLint(x.Cond)
		out := breaks
		if !(isConst && v != 0) {
			out = append(out, c)
		}
		return out

	case *capl.ForStmt:
		cur := in
		if x.Init != nil {
			cur = b.stmt(x.Init, cur)
		}
		// The loop head is the condition node, or a synthetic join for
		// the condition-less `for (;;)`.
		head := b.newNode(nil, x.Cond, pos{x.Line, x.Col})
		connect(cur, head)
		b.pushLoop()
		bodyOut := b.stmt(x.Body, []*cfgNode{head})
		breaks, continues := b.popLoop()
		back := append(bodyOut, continues...)
		if x.Post != nil {
			p := b.newNode(&capl.ExprStmt{X: x.Post, Line: x.Line, Col: x.Col}, nil, pos{x.Line, x.Col})
			connect(back, p)
			back = []*cfgNode{p}
		}
		connect(back, head)
		out := breaks
		if x.Cond != nil {
			if v, isConst := constEvalLint(x.Cond); !(isConst && v != 0) {
				out = append(out, head)
			}
		}
		return out

	case *capl.SwitchStmt:
		t := b.newNode(nil, x.Tag, pos{x.Line, x.Col})
		connect(in, t)
		b.breakNodes = append(b.breakNodes, nil)
		var fall []*cfgNode
		sawDefault := false
		for _, c := range x.Cases {
			if c.Value == nil {
				sawDefault = true
			}
			fall = b.stmtList(c.Stmts, append(fall, t))
		}
		breaks := b.breakNodes[len(b.breakNodes)-1]
		b.breakNodes = b.breakNodes[:len(b.breakNodes)-1]
		out := append(breaks, fall...)
		if !sawDefault || len(x.Cases) == 0 {
			out = append(out, t)
		}
		return out
	}
	return in
}

func (b *cfgBuilder) pushLoop() {
	b.breakNodes = append(b.breakNodes, nil)
	b.continueNodes = append(b.continueNodes, nil)
}

func (b *cfgBuilder) popLoop() (breaks, continues []*cfgNode) {
	breaks = b.breakNodes[len(b.breakNodes)-1]
	continues = b.continueNodes[len(b.continueNodes)-1]
	b.breakNodes = b.breakNodes[:len(b.breakNodes)-1]
	b.continueNodes = b.continueNodes[:len(b.continueNodes)-1]
	return breaks, continues
}

// reachable marks nodes reachable from entry.
func (g *cfg) reachable() []bool {
	seen := make([]bool, len(g.nodes))
	stack := []*cfgNode{g.entry}
	seen[g.entry.id] = true
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, s := range n.succs {
			if !seen[s.id] {
				seen[s.id] = true
				stack = append(stack, s)
			}
		}
	}
	return seen
}

// constEvalLint mirrors the translator's compile-time constant folding
// so reachability decisions agree with what translate would generate.
func constEvalLint(e capl.Expr) (int64, bool) {
	switch x := e.(type) {
	case *capl.IntLit:
		return x.Val, true
	case *capl.UnaryExpr:
		v, ok := constEvalLint(x.X)
		if !ok {
			return 0, false
		}
		switch x.Op {
		case capl.MINUS:
			return -v, true
		case capl.BANG:
			if v == 0 {
				return 1, true
			}
			return 0, true
		case capl.TILDE:
			return ^v, true
		}
		return 0, false
	case *capl.BinaryExpr:
		l, ok := constEvalLint(x.L)
		if !ok {
			return 0, false
		}
		r, ok := constEvalLint(x.R)
		if !ok {
			return 0, false
		}
		return constBinaryLint(x.Op, l, r)
	}
	return 0, false
}

func constBinaryLint(op capl.Kind, l, r int64) (int64, bool) {
	b2i := func(b bool) int64 {
		if b {
			return 1
		}
		return 0
	}
	switch op {
	case capl.PLUS:
		return l + r, true
	case capl.MINUS:
		return l - r, true
	case capl.STAR:
		return l * r, true
	case capl.SLASH:
		if r == 0 {
			return 0, false
		}
		return l / r, true
	case capl.PERCENT:
		if r == 0 {
			return 0, false
		}
		return l % r, true
	case capl.EQ:
		return b2i(l == r), true
	case capl.NE:
		return b2i(l != r), true
	case capl.LT:
		return b2i(l < r), true
	case capl.LE:
		return b2i(l <= r), true
	case capl.GT:
		return b2i(l > r), true
	case capl.GE:
		return b2i(l >= r), true
	case capl.ANDAND:
		return b2i(l != 0 && r != 0), true
	case capl.OROR:
		return b2i(l != 0 || r != 0), true
	case capl.AMP:
		return l & r, true
	case capl.PIPE:
		return l | r, true
	case capl.CARET:
		return l ^ r, true
	case capl.SHL:
		return l << uint(r&63), true
	case capl.SHR:
		return l >> uint(r&63), true
	}
	return 0, false
}
