package caplint

import (
	"os"
	"path/filepath"
	"testing"
)

// FuzzAnalyze asserts analyzer totality: for any input — however
// malformed — AnalyzeSource must terminate without panicking and
// return well-formed diagnostics (a known code, a valid severity, a
// non-negative position). The seeds cover the full corpus plus the
// parser's previously found crashers, so plain `go test` replays them
// as a regression suite.
func FuzzAnalyze(f *testing.F) {
	for _, glob := range []string{
		filepath.Join("..", "capl", "testdata", "*.can"),
		filepath.Join("..", "..", "testdata", "*.can"),
		filepath.Join("..", "..", "examples", "caplcheck", "*.can"),
	} {
		paths, err := filepath.Glob(glob)
		if err != nil {
			f.Fatal(err)
		}
		for _, p := range paths {
			data, err := os.ReadFile(p)
			if err != nil {
				f.Fatal(err)
			}
			f.Add(string(data))
		}
	}
	f.Add("")
	f.Add("'\\")                                 // historical FuzzParse crasher
	f.Add("variables { int x; int x; }")         // duplicate decl
	f.Add("on message m { output(m); }")         // undeclared target
	f.Add("void f() { f(); } on start { f(); }") // recursion
	f.Add("on start { for (;;) { break; } }")
	f.Fuzz(func(t *testing.T, src string) {
		known := map[string]bool{}
		for _, e := range Catalog() {
			known[e.Code] = true
		}
		for _, d := range AnalyzeSource("fuzz.can", src, Options{}) {
			if !known[d.Code] {
				t.Errorf("unknown diagnostic code %q", d.Code)
			}
			if d.Severity != SevInfo && d.Severity != SevWarning && d.Severity != SevError {
				t.Errorf("invalid severity %v in %v", d.Severity, d)
			}
			if d.Line < 0 || d.Col < 0 {
				t.Errorf("negative position in %v", d)
			}
		}
	})
}
