// Package caplint is a multi-pass static analyzer for CAPL programs,
// the missing front gate of the paper's Figure 1 pipeline: extraction
// of a CSP model from CAPL is only sound when the source has been
// validated against the abstraction first (cf. Aizatulin's
// model-extraction soundness argument). The analyzer runs
//
//  1. symbol resolution over a typed symbol table (variables, messages,
//     timers, functions) with duplicate-declaration, undeclared-name
//     and use-before-declare diagnostics;
//  2. a per-handler control-flow graph with dataflow passes:
//     unreachable statements, dead stores and reads of locals before
//     any assignment;
//  3. timer-protocol checks (timers set with no `on timer` handler,
//     handlers for timers never set);
//  4. optional cross-checks against a CANdb .dbc database (messages
//     sent or handled but not declared there, signal writes exceeding
//     the declared bit width); and
//  5. translation-soundness lints that statically flag every construct
//     internal/translate would abstract or drop (unknown function
//     calls, data-dependent branching, approximated loops, dropped
//     handlers), so a model consumer can gate on them before trusting
//     the extracted model.
//
// Every diagnostic carries a stable code (CAPL0001…), a severity and a
// source position. cmd/caplcheck is the CLI; translate.Translate runs
// the analyzer first when Options.Strict is set.
package caplint

import (
	"fmt"

	"repro/internal/candb"
	"repro/internal/capl"
)

// Options configures an analysis.
type Options struct {
	// File is the source filename reported in diagnostics.
	File string
	// DB enables CANdb cross-checking when non-nil.
	DB *candb.Database
}

// Analyze runs all passes over a parsed program and returns the
// findings sorted by position. It never panics on any parseable input
// (see FuzzAnalyze) and never modifies the program.
func Analyze(prog *capl.Program, opts Options) []Diagnostic {
	a := &analysis{prog: prog, opts: opts}
	a.collectDecls()
	a.resolveAll()
	a.checkFlow()
	a.checkTimers()
	a.checkDB()
	a.checkSoundness()
	a.checkTypes()
	Sort(a.diags)
	return dedupe(a.diags)
}

// dedupe drops exact repeats (a function inlined into several handlers
// would otherwise report its own findings once per call site).
func dedupe(diags []Diagnostic) []Diagnostic {
	var out []Diagnostic
	for i, d := range diags {
		if i > 0 && d == diags[i-1] {
			continue
		}
		out = append(out, d)
	}
	return out
}

// AnalyzeSource parses and analyzes CAPL source text. A parse failure
// is reported as a single CAPL0000 diagnostic rather than an error, so
// callers can treat "does not parse" uniformly with other findings.
func AnalyzeSource(file, src string, opts Options) []Diagnostic {
	opts.File = file
	prog, err := capl.Parse(src)
	if err != nil {
		d := Diagnostic{Code: CodeParse, Severity: SevError, File: file, Msg: err.Error()}
		if pe, ok := err.(*capl.Error); ok {
			d.Line, d.Col, d.Msg = pe.Line, pe.Col, pe.Msg
		}
		return []Diagnostic{d}
	}
	return Analyze(prog, opts)
}

// analysis carries shared state across the passes.
type analysis struct {
	prog  *capl.Program
	opts  Options
	diags []Diagnostic

	syms *symtab

	// Facts gathered during resolution, consumed by later passes.
	timersSet     map[string][]pos // setTimer sites per timer name
	timersHandled map[string][]pos // `on timer` handlers per timer name
	signalWrites  []signalWrite    // msgVar.Field = expr sites
}

type pos struct{ line, col int }

type signalWrite struct {
	msgVar string
	field  string
	value  capl.Expr
	at     pos
}

func (a *analysis) report(code string, sev Severity, line, col int, format string, args ...any) {
	a.diags = append(a.diags, Diagnostic{
		Code:     code,
		Severity: sev,
		File:     a.opts.File,
		Line:     line,
		Col:      col,
		Msg:      fmt.Sprintf(format, args...),
	})
}
