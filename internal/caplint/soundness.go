package caplint

import (
	"repro/internal/candb"
	"repro/internal/capl"
)

// checkTimers validates the timer protocol across the whole program:
// a timer that is set but has no `on timer` handler can only expire
// into the void (CAPL0008), and an `on timer` handler for a timer that
// is never set can never run (CAPL0009). Both weaken the extracted
// model silently, so they are surfaced before translation.
func (a *analysis) checkTimers() {
	for _, v := range a.prog.Variables {
		if kindOf(v.Type) != symTimer {
			continue
		}
		sets := a.timersSet[v.Name]
		handlers := a.timersHandled[v.Name]
		if len(sets) > 0 && len(handlers) == 0 {
			at := sets[0]
			a.report(CodeOrphanTimer, SevWarning, at.line, at.col,
				"timer %q is set but has no `on timer` handler", v.Name)
		}
		if len(handlers) > 0 && len(sets) == 0 {
			at := handlers[0]
			a.report(CodeUnfiredTimer, SevWarning, at.line, at.col,
				"`on timer %s` can never fire: the timer is never set", v.Name)
		}
	}
}

// checkDB cross-checks the program against the CAN database when one
// was supplied: declared and handled message identifiers/names must
// exist there (CAPL0013), and constant signal writes must fit the
// declared bit width (CAPL0014 / CAPL0015).
func (a *analysis) checkDB() {
	db := a.opts.DB
	if db == nil {
		return
	}
	for _, v := range a.prog.MessageDecls() {
		switch {
		case v.MsgID >= 0:
			if _, ok := db.MessageByID(uint32(v.MsgID)); !ok {
				a.report(CodeDBUnknownMsg, SevWarning, v.Line, v.Col,
					"message 0x%x (%s) is not declared in the CAN database", v.MsgID, v.Name)
			}
		case v.MsgName != "" && v.MsgName != "*":
			if _, ok := db.MessageByName(v.MsgName); !ok {
				a.report(CodeDBUnknownMsg, SevWarning, v.Line, v.Col,
					"message %q (%s) is not declared in the CAN database", v.MsgName, v.Name)
			}
		}
	}
	for _, h := range a.prog.HandlersOf(capl.OnMessage) {
		if h.TargetID < 0 {
			continue
		}
		if _, ok := db.MessageByID(uint32(h.TargetID)); !ok {
			a.report(CodeDBUnknownMsg, SevWarning, h.Line, h.Col,
				"on message 0x%x: identifier is not declared in the CAN database", h.TargetID)
		}
	}
	for _, w := range a.signalWrites {
		decl := a.messageDeclOf(w.msgVar)
		if decl == nil {
			continue
		}
		msg, ok := a.dbMessageOf(decl)
		if !ok {
			continue // missing message already reported above
		}
		sig, ok := msg.Signal(w.field)
		if !ok {
			a.report(CodeDBUnknownSignal, SevWarning, w.at.line, w.at.col,
				"message %s has no signal %q in the CAN database", msg.Name, w.field)
			continue
		}
		v, isConst := constEvalLint(w.value)
		if !isConst {
			continue
		}
		lo, hi := signalRawRange(sig.Signed, sig.Length)
		if v < lo || v > hi {
			a.report(CodeDBSignalWidth, SevError, w.at.line, w.at.col,
				"value %d does not fit signal %s.%s (%d bit%s, raw range %d..%d)",
				v, msg.Name, sig.Name, sig.Length, plural(sig.Length), lo, hi)
		}
	}
}

func plural(n int) string {
	if n == 1 {
		return ""
	}
	return "s"
}

// signalRawRange returns the raw value range a signal of the given
// signedness and bit length can carry.
func signalRawRange(signed bool, length int) (lo, hi int64) {
	if length <= 0 || length > 63 {
		if signed {
			return -1 << 62, 1<<62 - 1
		}
		return 0, 1<<62 - 1
	}
	if signed {
		return -1 << uint(length-1), 1<<uint(length-1) - 1
	}
	return 0, 1<<uint(length) - 1
}

func (a *analysis) messageDeclOf(name string) *capl.VarDecl {
	sym, ok := a.syms.globals[name]
	if !ok || sym.kind != symMessage {
		return nil
	}
	return sym.decl
}

func (a *analysis) dbMessageOf(decl *capl.VarDecl) (*candb.Message, bool) {
	if decl.MsgID >= 0 {
		return a.opts.DB.MessageByID(uint32(decl.MsgID))
	}
	if decl.MsgName != "" && decl.MsgName != "*" {
		return a.opts.DB.MessageByName(decl.MsgName)
	}
	return nil, false
}

// checkSoundness statically flags every construct the model extractor
// (internal/translate) would abstract or drop, so the extraction's
// soundness caveats are visible *before* a model is trusted:
//
//   - calls to unknown functions vanish from the model (CAPL0007);
//   - recursive functions cannot be inlined (CAPL0020);
//   - data-dependent conditions and switches become internal choice
//     (CAPL0016);
//   - loops whose bodies communicate are over-approximated as
//     zero-or-more iterations (CAPL0017);
//   - `on key` / `on stopMeasurement` handlers are outside the network
//     model (CAPL0018);
//   - non-constant setTimer durations collapse to one tock under the
//     timed abstraction (CAPL0019).
//
// The walk mirrors translate/body.go's structure (including function
// inlining) without building processes.
func (a *analysis) checkSoundness() {
	for _, h := range a.prog.Handlers {
		switch h.Kind {
		case capl.OnKey, capl.OnStopMeasurement:
			a.report(CodeDroppedHandler, SevInfo, h.Line, h.Col,
				"on %s handler is dropped from the extracted network model", h.Kind)
		}
		a.soundStmts(h.Body.Stmts, nil)
	}
	// Function bodies are analyzed at their (transitive) call sites so
	// the inlining stack detects recursion exactly as translation would;
	// uncalled functions are still walked once for their own findings.
	called := map[string]bool{}
	for _, h := range a.prog.Handlers {
		markCalls(h.Body, a.prog, called, nil)
	}
	for _, f := range a.prog.Functions {
		if !called[f.Name] {
			a.soundStmts(f.Body.Stmts, []string{f.Name})
		}
	}
}

// markCalls records user functions transitively reachable from s.
func markCalls(s capl.Stmt, prog *capl.Program, called map[string]bool, stack []string) {
	forEachCall(s, func(c *capl.CallExpr) {
		fn, ok := prog.Function(c.Fun)
		if !ok || called[c.Fun] {
			return
		}
		for _, active := range stack {
			if active == c.Fun {
				return
			}
		}
		called[c.Fun] = true
		markCalls(fn.Body, prog, called, append(stack, c.Fun))
	})
}

// forEachCall visits every statement-position call expression in s.
func forEachCall(s capl.Stmt, visit func(*capl.CallExpr)) {
	switch x := s.(type) {
	case *capl.BlockStmt:
		for _, st := range x.Stmts {
			forEachCall(st, visit)
		}
	case *capl.ExprStmt:
		if c, ok := x.X.(*capl.CallExpr); ok {
			visit(c)
		}
	case *capl.IfStmt:
		forEachCall(x.Then, visit)
		if x.Else != nil {
			forEachCall(x.Else, visit)
		}
	case *capl.WhileStmt:
		forEachCall(x.Body, visit)
	case *capl.DoWhileStmt:
		forEachCall(x.Body, visit)
	case *capl.ForStmt:
		forEachCall(x.Body, visit)
	case *capl.SwitchStmt:
		for _, c := range x.Cases {
			for _, st := range c.Stmts {
				forEachCall(st, visit)
			}
		}
	}
}

// soundStmts walks a statement list with the current inlining stack.
func (a *analysis) soundStmts(list []capl.Stmt, inlining []string) {
	for _, s := range list {
		a.soundStmt(s, inlining)
	}
}

func (a *analysis) soundStmt(s capl.Stmt, inlining []string) {
	switch x := s.(type) {
	case *capl.BlockStmt:
		a.soundStmts(x.Stmts, inlining)

	case *capl.ExprStmt:
		call, ok := x.X.(*capl.CallExpr)
		if !ok {
			return // pure state: the intended abstraction
		}
		switch call.Fun {
		case "output", "cancelTimer", "write", "writeEx", "writeLineEx":
			return
		case "setTimer":
			if len(call.Args) >= 2 {
				if _, isConst := constEvalLint(call.Args[1]); !isConst {
					a.report(CodeInexactDuration, SevInfo, x.Line, x.Col,
						"non-constant timer duration is approximated as one tock under the timed abstraction")
				}
			}
			return
		}
		fn, ok := a.prog.Function(call.Fun)
		if !ok {
			a.report(CodeUnknownFunc, SevError, x.Line, x.Col,
				"call to unknown function %s() would be abstracted away, weakening the extracted model", call.Fun)
			return
		}
		for _, active := range inlining {
			if active == call.Fun {
				a.report(CodeRecursiveFunc, SevError, x.Line, x.Col,
					"recursive function %s() cannot be inlined into the model", call.Fun)
				return
			}
		}
		a.soundStmts(fn.Body.Stmts, append(inlining, call.Fun))

	case *capl.IfStmt:
		if _, isConst := constEvalLint(x.Cond); !isConst {
			if a.stmtHasEvents(x.Then, inlining) || (x.Else != nil && a.stmtHasEvents(x.Else, inlining)) {
				a.report(CodeAbstractedCond, SevInfo, x.Line, x.Col,
					"data-dependent condition is abstracted to internal choice")
			}
		}
		a.soundStmt(x.Then, inlining)
		if x.Else != nil {
			a.soundStmt(x.Else, inlining)
		}

	case *capl.WhileStmt:
		a.soundLoop(x.Body, x.Line, x.Col, inlining)
	case *capl.ForStmt:
		a.soundLoop(x.Body, x.Line, x.Col, inlining)
	case *capl.DoWhileStmt:
		a.soundLoop(x.Body, x.Line, x.Col, inlining)

	case *capl.SwitchStmt:
		if _, isConst := constEvalLint(x.Tag); !isConst {
			hasEvents := false
			for _, c := range x.Cases {
				for _, st := range c.Stmts {
					if a.stmtHasEvents(st, inlining) {
						hasEvents = true
						break
					}
				}
			}
			if hasEvents {
				a.report(CodeAbstractedCond, SevInfo, x.Line, x.Col,
					"switch on runtime data is abstracted to internal choice over its arms")
			}
		}
		for _, c := range x.Cases {
			a.soundStmts(c.Stmts, inlining)
		}
	}
}

func (a *analysis) soundLoop(body capl.Stmt, line, col int, inlining []string) {
	if a.stmtHasEvents(body, inlining) {
		a.report(CodeAbstractedLoop, SevInfo, line, col,
			"loop with communicating body is over-approximated as zero-or-more iterations")
	}
	a.soundStmt(body, inlining)
}

// stmtHasEvents mirrors the translator's hasEvents: whether executing
// the statement can produce an event in the extracted model.
func (a *analysis) stmtHasEvents(s capl.Stmt, inlining []string) bool {
	switch x := s.(type) {
	case *capl.BlockStmt:
		for _, st := range x.Stmts {
			if a.stmtHasEvents(st, inlining) {
				return true
			}
		}
	case *capl.ExprStmt:
		call, ok := x.X.(*capl.CallExpr)
		if !ok {
			return false
		}
		switch call.Fun {
		case "output", "setTimer", "cancelTimer":
			return true
		case "write", "writeEx", "writeLineEx":
			return false
		}
		if fn, ok := a.prog.Function(call.Fun); ok {
			for _, active := range inlining {
				if active == call.Fun {
					return false
				}
			}
			return a.stmtHasEvents(fn.Body, append(inlining, call.Fun))
		}
	case *capl.IfStmt:
		if a.stmtHasEvents(x.Then, inlining) {
			return true
		}
		if x.Else != nil {
			return a.stmtHasEvents(x.Else, inlining)
		}
	case *capl.WhileStmt:
		return a.stmtHasEvents(x.Body, inlining)
	case *capl.DoWhileStmt:
		return a.stmtHasEvents(x.Body, inlining)
	case *capl.ForStmt:
		return a.stmtHasEvents(x.Body, inlining)
	case *capl.SwitchStmt:
		for _, c := range x.Cases {
			for _, st := range c.Stmts {
				if a.stmtHasEvents(st, inlining) {
					return true
				}
			}
		}
	}
	return false
}
