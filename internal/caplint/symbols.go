package caplint

import "repro/internal/capl"

// symKind classifies a symbol for resolution and later passes.
type symKind int

const (
	symScalar symKind = iota + 1 // int/long/byte/word/dword/char/float/double
	symMessage
	symTimer
	symFunc
	symParam
)

func kindOf(t capl.TypeSpec) symKind {
	switch t.Base {
	case capl.TypeMessage:
		return symMessage
	case capl.TypeMsTimer, capl.TypeTimer:
		return symTimer
	}
	return symScalar
}

// symbol is one declared name.
type symbol struct {
	name string
	kind symKind
	typ  capl.TypeSpec
	decl *capl.VarDecl // nil for functions
	at   pos
}

// symtab is the program-level symbol table: the variables section plus
// user-defined functions. Locals live in the scope stack during the
// resolution walk, not here.
type symtab struct {
	globals map[string]*symbol
	funcs   map[string]*capl.FuncDecl
}

// builtinFuncs are the CAPL intrinsics the interpreter and translator
// understand; calls to them never produce CAPL0007.
var builtinFuncs = map[string]bool{
	"output": true, "setTimer": true, "cancelTimer": true,
	"write": true, "writeEx": true, "writeLineEx": true,
}

// builtinMsgFields are the message member selectors with translator/
// interpreter support; other selectors are treated as .dbc signals.
var builtinMsgFields = map[string]bool{
	"ID": true, "id": true, "DLC": true, "dlc": true,
	"byte": true, "word": true, "dword": true, "long": true, "int": true, "char": true,
}

// collectDecls builds the global symbol table, reporting duplicate
// declarations (CAPL0001).
func (a *analysis) collectDecls() {
	st := &symtab{globals: map[string]*symbol{}, funcs: map[string]*capl.FuncDecl{}}
	for _, v := range a.prog.Variables {
		if prev, ok := st.globals[v.Name]; ok {
			a.report(CodeDuplicateDecl, SevError, v.Line, v.Col,
				"%s %q redeclared (first declared at line %d)", v.Type, v.Name, prev.at.line)
			continue
		}
		st.globals[v.Name] = &symbol{
			name: v.Name, kind: kindOf(v.Type), typ: v.Type, decl: v,
			at: pos{v.Line, v.Col},
		}
	}
	for _, f := range a.prog.Functions {
		if prev, ok := st.funcs[f.Name]; ok {
			a.report(CodeDuplicateDecl, SevError, f.Line, f.Col,
				"function %q redeclared (first declared at line %d)", f.Name, prev.Line)
			continue
		}
		if builtinFuncs[f.Name] {
			a.report(CodeDuplicateDecl, SevError, f.Line, f.Col,
				"function %q shadows a CAPL built-in", f.Name)
		}
		st.funcs[f.Name] = f
	}
	a.syms = st
	a.timersSet = map[string][]pos{}
	a.timersHandled = map[string][]pos{}
}

// scope is one lexical block during the resolution walk.
type scope struct {
	parent *scope
	names  map[string]*symbol
}

func (s *scope) lookup(name string) (*symbol, bool) {
	for sc := s; sc != nil; sc = sc.parent {
		if sym, ok := sc.names[name]; ok {
			return sym, true
		}
	}
	return nil, false
}

// resolver walks one handler or function body.
type resolver struct {
	a *analysis
	// inMessageHandler enables `this`.
	inMessageHandler bool
	// laterLocals maps names declared later in a block currently being
	// walked to their declaration line, for use-before-declare reports.
	laterLocals map[string]pos
}

// resolveAll resolves every handler and function body, reporting
// undeclared identifiers (CAPL0002), use-before-declare (CAPL0003),
// `this` misuse (CAPL0022) and misdeclared handler targets
// (CAPL0009/0010/0012 facts are gathered here too).
func (a *analysis) resolveAll() {
	for _, h := range a.prog.Handlers {
		r := &resolver{a: a, inMessageHandler: h.Kind == capl.OnMessage, laterLocals: map[string]pos{}}
		top := &scope{names: map[string]*symbol{}}
		switch h.Kind {
		case capl.OnMessage:
			a.checkMessageTarget(h)
		case capl.OnTimer:
			if sym, ok := a.syms.globals[h.Target]; !ok || sym.kind != symTimer {
				a.report(CodeBadTimerArg, SevError, h.Line, h.Col,
					"on timer %s: timer not declared in variables section", h.Target)
			}
			a.timersHandled[h.Target] = append(a.timersHandled[h.Target], pos{h.Line, h.Col})
		}
		r.block(h.Body, top)
	}
	for _, f := range a.prog.Functions {
		r := &resolver{a: a, laterLocals: map[string]pos{}}
		top := &scope{names: map[string]*symbol{}}
		for _, p := range f.Params {
			if _, ok := top.names[p.Name]; ok {
				a.report(CodeDuplicateDecl, SevError, p.Line, p.Col,
					"parameter %q redeclared", p.Name)
				continue
			}
			top.names[p.Name] = &symbol{name: p.Name, kind: symParam, typ: p.Type, decl: p, at: pos{p.Line, p.Col}}
		}
		r.block(f.Body, top)
	}
}

// checkMessageTarget validates the target of an `on message` handler
// against the declared message variables.
func (a *analysis) checkMessageTarget(h *capl.Handler) {
	if h.Target == "*" {
		return
	}
	if h.TargetID >= 0 {
		for _, v := range a.prog.MessageDecls() {
			if v.MsgID == h.TargetID {
				return
			}
		}
		a.report(CodeUnknownMsgVar, SevError, h.Line, h.Col,
			"on message 0x%x: no message with that identifier declared", h.TargetID)
		return
	}
	if sym, ok := a.syms.globals[h.Target]; !ok || sym.kind != symMessage {
		a.report(CodeUnknownMsgVar, SevError, h.Line, h.Col,
			"on message %s: message variable not declared", h.Target)
	}
}

// block walks a block statement in a fresh child scope.
func (r *resolver) block(b *capl.BlockStmt, parent *scope) {
	sc := &scope{parent: parent, names: map[string]*symbol{}}
	r.stmtList(b.Stmts, sc)
}

// stmtList walks statements in order, registering declarations as they
// appear so earlier statements cannot see later locals. Names declared
// later in this same list are recorded first, so a premature use is
// reported as use-before-declare rather than undeclared.
func (r *resolver) stmtList(list []capl.Stmt, sc *scope) {
	declared := collectLocalDecls(list)
	added := make([]string, 0, len(declared))
	for name, at := range declared {
		if _, ok := r.laterLocals[name]; !ok {
			r.laterLocals[name] = at
			added = append(added, name)
		}
	}
	for _, s := range list {
		r.stmt(s, sc)
	}
	for _, name := range added {
		delete(r.laterLocals, name)
	}
}

// collectLocalDecls maps names declared directly in the list (not in
// nested blocks) to their positions.
func collectLocalDecls(list []capl.Stmt) map[string]pos {
	out := map[string]pos{}
	for _, s := range list {
		if ds, ok := s.(*capl.DeclStmt); ok {
			for _, d := range ds.Decls {
				if _, dup := out[d.Name]; !dup {
					out[d.Name] = pos{d.Line, d.Col}
				}
			}
		}
	}
	return out
}

func (r *resolver) stmt(s capl.Stmt, sc *scope) {
	switch x := s.(type) {
	case *capl.BlockStmt:
		r.block(x, sc)
	case *capl.DeclStmt:
		for _, d := range x.Decls {
			if d.Init != nil {
				r.expr(d.Init, sc)
			}
			if _, ok := sc.names[d.Name]; ok {
				r.a.report(CodeDuplicateDecl, SevError, d.Line, d.Col,
					"%s %q redeclared in this block", d.Type, d.Name)
				continue
			}
			sc.names[d.Name] = &symbol{name: d.Name, kind: kindOf(d.Type), typ: d.Type, decl: d, at: pos{d.Line, d.Col}}
			delete(r.laterLocals, d.Name)
		}
	case *capl.ExprStmt:
		r.expr(x.X, sc)
	case *capl.IfStmt:
		r.expr(x.Cond, sc)
		r.stmt(x.Then, sc)
		if x.Else != nil {
			r.stmt(x.Else, sc)
		}
	case *capl.WhileStmt:
		r.expr(x.Cond, sc)
		r.stmt(x.Body, sc)
	case *capl.DoWhileStmt:
		r.stmt(x.Body, sc)
		r.expr(x.Cond, sc)
	case *capl.ForStmt:
		inner := &scope{parent: sc, names: map[string]*symbol{}}
		if x.Init != nil {
			r.stmt(x.Init, inner)
		}
		if x.Cond != nil {
			r.expr(x.Cond, inner)
		}
		if x.Post != nil {
			r.expr(x.Post, inner)
		}
		r.stmt(x.Body, inner)
	case *capl.SwitchStmt:
		r.expr(x.Tag, sc)
		for _, c := range x.Cases {
			if c.Value != nil {
				r.expr(c.Value, sc)
			}
			inner := &scope{parent: sc, names: map[string]*symbol{}}
			r.stmtList(c.Stmts, inner)
		}
	case *capl.ReturnStmt:
		if x.X != nil {
			r.expr(x.X, sc)
		}
	case *capl.BreakStmt, *capl.ContinueStmt:
	}
}

// resolveIdent looks a name up through locals then globals, reporting
// CAPL0002/0003 on failure. The returned symbol is nil if unresolved.
func (r *resolver) resolveIdent(id *capl.Ident, sc *scope) *symbol {
	if sym, ok := sc.lookup(id.Name); ok {
		return sym
	}
	if sym, ok := r.a.syms.globals[id.Name]; ok {
		return sym
	}
	if at, ok := r.laterLocals[id.Name]; ok {
		r.a.report(CodeUseBeforeDecl, SevError, id.Line, id.Col,
			"%q used before its declaration at line %d", id.Name, at.line)
		return nil
	}
	r.a.report(CodeUndeclared, SevError, id.Line, id.Col,
		"undeclared identifier %q", id.Name)
	return nil
}

func (r *resolver) expr(e capl.Expr, sc *scope) {
	switch x := e.(type) {
	case *capl.Ident:
		r.resolveIdent(x, sc)
	case *capl.ThisExpr:
		if !r.inMessageHandler {
			r.a.report(CodeThisOutsideMsg, SevError, x.Line, x.Col,
				"`this` is only defined inside an `on message` handler")
		}
	case *capl.BinaryExpr:
		r.expr(x.L, sc)
		r.expr(x.R, sc)
	case *capl.UnaryExpr:
		r.expr(x.X, sc)
	case *capl.PostfixExpr:
		r.expr(x.X, sc)
	case *capl.AssignExpr:
		r.assign(x, sc)
	case *capl.CondExpr:
		r.expr(x.Cond, sc)
		r.expr(x.Then, sc)
		r.expr(x.Else, sc)
	case *capl.CallExpr:
		r.call(x, sc)
	case *capl.MemberExpr:
		r.expr(x.X, sc)
		for _, arg := range x.Args {
			r.expr(arg, sc)
		}
	case *capl.IndexExpr:
		r.expr(x.X, sc)
		r.expr(x.Index, sc)
	case *capl.IntLit, *capl.FloatLit, *capl.StrLit, nil:
	}
}

// assign resolves both sides and records signal-write facts for the
// CANdb cross-check: `msgVar.Field = expr` with a non-builtin field is
// a candidate .dbc signal write.
func (r *resolver) assign(x *capl.AssignExpr, sc *scope) {
	r.expr(x.L, sc)
	r.expr(x.R, sc)
	m, ok := x.L.(*capl.MemberExpr)
	if !ok || m.IsCall || builtinMsgFields[m.Field] {
		return
	}
	base, ok := m.X.(*capl.Ident)
	if !ok {
		return
	}
	if sym, found := r.lookupQuiet(base.Name, sc); found && sym.kind == symMessage {
		r.a.signalWrites = append(r.a.signalWrites, signalWrite{
			msgVar: base.Name, field: m.Field, value: x.R, at: pos{m.Line, m.Col},
		})
	}
}

// lookupQuiet resolves without reporting (the operand walk already
// reported any failure).
func (r *resolver) lookupQuiet(name string, sc *scope) (*symbol, bool) {
	if sym, ok := sc.lookup(name); ok {
		return sym, true
	}
	sym, ok := r.a.syms.globals[name]
	return sym, ok
}

// call resolves a call's arguments and records timer/output facts.
// Function-name resolution itself is the soundness pass's job
// (CAPL0007/0020); argument shape checks happen here because they need
// the scope.
func (r *resolver) call(x *capl.CallExpr, sc *scope) {
	for _, arg := range x.Args {
		r.expr(arg, sc)
	}
	switch x.Fun {
	case "output":
		if len(x.Args) != 1 {
			r.a.report(CodeBadOutputArity, SevError, x.Line, x.Col,
				"output() expects exactly one argument, got %d", len(x.Args))
			return
		}
		id, ok := x.Args[0].(*capl.Ident)
		if !ok {
			if _, isThis := x.Args[0].(*capl.ThisExpr); isThis && r.inMessageHandler {
				return // output(this) re-emits the triggering message
			}
			r.a.report(CodeBadOutputArg, SevError, x.Line, x.Col,
				"output() argument must be a message variable")
			return
		}
		if sym, found := r.lookupQuiet(id.Name, sc); !found || sym.kind != symMessage {
			r.a.report(CodeBadOutputArg, SevError, id.Line, id.Col,
				"output(%s): not a declared message variable", id.Name)
		}
	case "setTimer", "cancelTimer":
		if len(x.Args) < 1 {
			r.a.report(CodeBadTimerArg, SevError, x.Line, x.Col,
				"%s() expects a timer argument", x.Fun)
			return
		}
		id, ok := x.Args[0].(*capl.Ident)
		if !ok {
			r.a.report(CodeBadTimerArg, SevError, x.Line, x.Col,
				"%s(): first argument must be a declared timer", x.Fun)
			return
		}
		sym, found := r.lookupQuiet(id.Name, sc)
		if !found || sym.kind != symTimer {
			r.a.report(CodeBadTimerArg, SevError, id.Line, id.Col,
				"%s(%s): not a declared timer", x.Fun, id.Name)
			return
		}
		if x.Fun == "setTimer" {
			r.a.timersSet[id.Name] = append(r.a.timersSet[id.Name], pos{x.Line, x.Col})
		}
	}
}
