package caplint

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/candb"
	"repro/internal/capl"
)

// otaDB loads the OTA CAN database the corpus is checked against.
func otaDB(t testing.TB) *candb.Database {
	t.Helper()
	src, err := os.ReadFile(filepath.Join("..", "..", "testdata", "ota.dbc"))
	if err != nil {
		t.Fatal(err)
	}
	db, err := candb.Parse(string(src))
	if err != nil {
		t.Fatal(err)
	}
	return db
}

// TestTypecheckDefectClasses exercises each CAPL0100+ code on a
// minimal program, one code per case, complementing the ill_typed.can
// golden with isolated triggers.
func TestTypecheckDefectClasses(t *testing.T) {
	cases := []struct {
		name  string
		src   string
		useDB bool
		want  []string
	}{
		{"message-in-arithmetic", `variables { message 0x1 m; int x; }
			on start { x = m + 1; write("%d", x); }`, false,
			[]string{CodeTypeMismatch}},
		{"message-assigned-number", `variables { message 0x1 m; }
			on message m { m = 5; output(m); }`, false,
			[]string{CodeTypeMismatch}},
		{"timer-assigned", `variables { msTimer t; }
			on start { t = 5; setTimer(t, 10); }
			on timer t { write("x"); }`, false,
			[]string{CodeTypeMismatch}},
		{"narrowing-long-to-int", `variables { long l; int i; }
			on start { i = l; write("%d", i); }`, false,
			[]string{CodeNarrowing}},
		{"narrowing-float-to-int", `variables { double d; int i; }
			on start { i = d; write("%d", i); }`, false,
			[]string{CodeNarrowing}},
		{"narrowing-compound", `variables { long l; int i; }
			on start { i += l; write("%d", i); }`, false,
			[]string{CodeNarrowing}},
		{"const-overflow-byte", `variables { byte b; }
			on start { b = 300; write("%d", b); }`, false,
			[]string{CodeConstOverflow}},
		{"const-overflow-negative-into-word", `variables { word w; }
			on start { w = -1; write("%d", w); }`, false,
			[]string{CodeConstOverflow}},
		{"call-arity", `variables { int x; }
			int twice(int v) { return v + v; }
			on start { x = twice(1, 2); write("%d", x); }`, false,
			[]string{CodeCallArity}},
		{"call-arg-type", `variables { message 0x1 m; int x; }
			int twice(int v) { return v + v; }
			on start { x = twice(m); write("%d", x); }`, false,
			[]string{CodeCallArgType}},
		{"call-arg-const-overflow", `variables { int x; }
			int half(byte v) { return v / 2; }
			on start { x = half(999); write("%d", x); }`, false,
			[]string{CodeConstOverflow}},
		{"return-value-from-void", `void f() { return 1; }
			on start { f(); }`, false,
			[]string{CodeBadReturn}},
		{"return-bare-from-long", `long f() { return; }
			on start { f(); }`, false,
			[]string{CodeBadReturn}},
		{"return-wrong-class", `variables { message 0x1 m; }
			long f() { return m; }
			on start { f(); }`, false,
			[]string{CodeBadReturn}},
		{"return-never-returns-value", `long f() { write("x"); }
			on start { f(); }`, false,
			[]string{CodeBadReturn}},
		{"return-value-from-handler", `on start { return 1; }`, false,
			[]string{CodeBadReturn}},
		{"array-index-out-of-bounds", `variables { byte buf[4]; }
			on start { buf[4] = 1; write("%d", buf[0]); }`, false,
			[]string{CodeArrayMisuse}},
		{"array-assigned-whole", `variables { byte buf[4]; }
			on start { buf = 1; write("%d", buf[0]); }`, false,
			[]string{CodeArrayMisuse}},
		{"array-as-scalar", `variables { byte buf[4]; int x; }
			on start { x = buf + 1; write("%d", x); }`, false,
			[]string{CodeArrayMisuse}},
		{"index-non-array", `variables { int x; int y; }
			on start { y = x[0]; write("%d", y); }`, false,
			[]string{CodeArrayMisuse}},
		{"message-condition", `variables { message 0x1 m; }
			on start { if (m) { output(m); } }`, false,
			[]string{CodeBadCondition}},
		{"message-switch-tag", `variables { message 0x1 m; int x; }
			on start { switch (m) { default: x = 1; } write("%d", x); }`, false,
			[]string{CodeBadCondition}},
		{"signal-width-nonconst", `variables { message 0x102 rpt; int lvl; }
			on message 0x101 { rpt.Status = lvl + lvl; output(rpt); }`, true,
			[]string{CodeSignalNarrow}},
		{"settimer-duration-type", `variables { msTimer t; message 0x1 m; }
			on start { setTimer(t, m); }
			on timer t { write("x"); }`, false,
			[]string{CodeBadBuiltinArg}},
		{"settimer-arity", `variables { msTimer t; }
			on start { setTimer(t); }
			on timer t { write("x"); }`, false,
			[]string{CodeBadBuiltinArg}},
		{"write-format-type", `variables { int x; }
			on start { x = 1; write(x); }`, false,
			[]string{CodeBadBuiltinArg}},
		{"selector-arity", `variables { message 0x1 m; int x; }
			on message m { x = this.byte(0, 1); write("%d", x); }`, false,
			[]string{CodeBadBuiltinArg}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			opts := Options{}
			if tc.useDB {
				opts.DB = otaDB(t)
			}
			diags := AnalyzeSource(tc.name+".can", tc.src, opts)
			got := map[string]bool{}
			for _, d := range diags {
				got[d.Code] = true
			}
			for _, code := range tc.want {
				if !got[code] {
					t.Errorf("missing %s; got %v", code, diags)
				}
			}
		})
	}
}

// TestTypecheckCleanSnippets pins well-typed programs that must stay
// silent: the typechecker's value depends on accepting CAPL's normal
// forgiving numeric style, not just on rejecting abuse.
func TestTypecheckCleanSnippets(t *testing.T) {
	typeCodes := map[string]bool{
		CodeTypeMismatch: true, CodeNarrowing: true, CodeConstOverflow: true,
		CodeCallArity: true, CodeCallArgType: true, CodeBadReturn: true,
		CodeArrayMisuse: true, CodeBadCondition: true, CodeSignalNarrow: true,
		CodeBadBuiltinArg: true,
	}
	cases := []struct {
		name  string
		src   string
		useDB bool
	}{
		// Same-width increment: the everyday counter idiom.
		{"counter-increment", `variables { int hits; }
			on start { hits = hits + 1; }`, false},
		// A constant that fits is not a narrowing.
		{"fitting-constant", `variables { byte b; }
			on start { b = 255; write("%d", b); }`, false},
		// Widening is always safe.
		{"widening", `variables { int i; long l; double d; }
			on start { l = i; d = l; write("%d", l); }`, false},
		// Comparison results are 0/1 and fit any integer type.
		{"comparison-result", `variables { byte flag; int a; int b; }
			on start { flag = a < b; write("%d", flag); }`, false},
		// Message copy assignment is legal CAPL.
		{"message-copy", `variables { message 0x1 a; message 0x2 b; }
			on start { a = b; output(a); }`, false},
		// In-bounds constant and variable indexing of a sized array.
		{"array-indexing", `variables { byte buf[8]; int i; }
			on start { buf[0] = 1; buf[7] = 2; buf[i] = 3; write("%d", buf[0]); }`, false},
		// char buffers may be initialised from a string literal.
		{"char-array-string-init", `on start { char name[8] = "ecu"; write(name[0] ? "y" : "n"); }`, false},
		// A constant signal write that fits is CAPL0014-clean and ours too.
		{"fitting-signal-write", `variables { message 0x102 rpt; }
			on message 0x101 { rpt.Status = 3; output(rpt); }`, true},
		// A narrow expression fits a wide signal (SessionId is 16 bits).
		{"byte-into-wide-signal", `variables { message 0x101 req; byte n; }
			on start { req.SessionId = n; output(req); }`, true},
		// setTimer with a computed numeric duration.
		{"computed-duration", `variables { msTimer t; int base; }
			on start { setTimer(t, base * 2 + 5); }
			on timer t { write("x"); }`, false},
		// User function call with exact types, value returned and used.
		{"well-typed-call", `variables { long total; }
			long add(long a, long b) { return a + b; }
			on start { total = add(total, 1); }`, false},
		// Message selectors read and written at their declared widths.
		{"builtin-selectors", `variables { message 0x1 m; dword id; }
			on message m { id = this.ID; m.byte(0) = 1; output(m); }`, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			opts := Options{}
			if tc.useDB {
				opts.DB = otaDB(t)
			}
			for _, d := range AnalyzeSource(tc.name+".can", tc.src, opts) {
				if typeCodes[d.Code] {
					t.Errorf("false positive %v", d)
				}
			}
		})
	}
}

// TestTypeSpecArrayRendering pins TypeSpec.String's array forms (the
// typechecker's diagnostics embed them, so `byte[8]` must not regress
// to `byte[]`).
func TestTypeSpecArrayRendering(t *testing.T) {
	cases := []struct {
		spec capl.TypeSpec
		want string
	}{
		{capl.TypeSpec{Base: capl.TypeByte}, "byte"},
		{capl.TypeSpec{Base: capl.TypeByte, ArrayDims: []int{8}}, "byte[8]"},
		{capl.TypeSpec{Base: capl.TypeInt, ArrayDims: []int{0}}, "int[]"},
		{capl.TypeSpec{Base: capl.TypeChar, ArrayDims: []int{4, 16}}, "char[4][16]"},
		{capl.TypeSpec{Base: capl.TypeLong, ArrayDims: []int{2, 0}}, "long[2][]"},
	}
	for _, tc := range cases {
		if got := tc.spec.String(); got != tc.want {
			t.Errorf("TypeSpec%v.String() = %q, want %q", tc.spec, got, tc.want)
		}
		if got := tyOfSpec(tc.spec).String(); got != tc.want {
			t.Errorf("tyOfSpec(%v).String() = %q, want %q", tc.spec, got, tc.want)
		}
	}
}

// FuzzTypecheck asserts typechecker totality in isolation: for any
// parseable program, the checkTypes pass must terminate without
// panicking and report only its own code range, at sane positions —
// with and without a CAN database attached.
func FuzzTypecheck(f *testing.F) {
	for _, glob := range []string{
		filepath.Join("..", "capl", "testdata", "*.can"),
		filepath.Join("..", "..", "testdata", "*.can"),
		filepath.Join("..", "..", "examples", "caplcheck", "*.can"),
	} {
		paths, err := filepath.Glob(glob)
		if err != nil {
			f.Fatal(err)
		}
		for _, p := range paths {
			data, err := os.ReadFile(p)
			if err != nil {
				f.Fatal(err)
			}
			f.Add(string(data))
		}
	}
	f.Add("on start { char name[8] = \"x\"; name[0] = name[1] + 1; }")
	f.Add("variables { message 0x102 m; } on message 0x101 { m.Status = this.SessionId; output(m); }")
	f.Add("double f(double d) { return d > 0 ? d : -d; } on start { write(\"%d\", 0); }")
	db := otaDB(f)
	known := map[string]bool{}
	for _, e := range Catalog() {
		known[e.Code] = true
	}
	f.Fuzz(func(t *testing.T, src string) {
		prog, err := capl.Parse(src)
		if err != nil {
			t.Skip()
		}
		for _, opts := range []Options{{File: "fuzz.can"}, {File: "fuzz.can", DB: db}} {
			a := &analysis{prog: prog, opts: opts}
			a.collectDecls()
			a.checkTypes()
			for _, d := range a.diags {
				if !known[d.Code] {
					t.Errorf("unknown diagnostic code %q", d.Code)
				}
				if d.Line < 0 || d.Col < 0 {
					t.Errorf("negative position in %v", d)
				}
			}
		}
	})
}
