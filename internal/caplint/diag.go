package caplint

import (
	"encoding/json"
	"fmt"
	"sort"
)

// Severity ranks diagnostics. The caplcheck CLI gates its exit status
// on a minimum severity, and strict translation refuses extraction on
// SevError findings.
type Severity int

// Severity levels, weakest first.
const (
	SevInfo Severity = iota + 1
	SevWarning
	SevError
)

var severityNames = map[Severity]string{
	SevInfo: "info", SevWarning: "warning", SevError: "error",
}

// String returns "info", "warning" or "error".
func (s Severity) String() string {
	if n, ok := severityNames[s]; ok {
		return n
	}
	return fmt.Sprintf("severity(%d)", int(s))
}

// MarshalJSON encodes the severity as its name.
func (s Severity) MarshalJSON() ([]byte, error) {
	return json.Marshal(s.String())
}

// UnmarshalJSON decodes a severity name.
func (s *Severity) UnmarshalJSON(b []byte) error {
	var name string
	if err := json.Unmarshal(b, &name); err != nil {
		return err
	}
	sev, err := ParseSeverity(name)
	if err != nil {
		return err
	}
	*s = sev
	return nil
}

// ParseSeverity converts a severity name to its value.
func ParseSeverity(name string) (Severity, error) {
	for s, n := range severityNames {
		if n == name {
			return s, nil
		}
	}
	return 0, fmt.Errorf("unknown severity %q (want info, warning or error)", name)
}

// Diagnostic is one analyzer finding: a stable code, a severity, a
// source position and a human-readable message.
type Diagnostic struct {
	Code     string   `json:"code"`
	Severity Severity `json:"severity"`
	File     string   `json:"file,omitempty"`
	Line     int      `json:"line"`
	Col      int      `json:"col,omitempty"`
	Msg      string   `json:"msg"`
}

// String renders the diagnostic in the conventional
// file:line:col: severity: message [CODE] form.
func (d Diagnostic) String() string {
	pos := d.File
	if d.Line > 0 {
		pos = fmt.Sprintf("%s:%d", pos, d.Line)
		if d.Col > 0 {
			pos = fmt.Sprintf("%s:%d", pos, d.Col)
		}
	}
	if pos != "" {
		pos += ": "
	}
	return fmt.Sprintf("%s%s: %s [%s]", pos, d.Severity, d.Msg, d.Code)
}

// Sort orders diagnostics by position, then code, then message, giving
// deterministic (golden-testable) output.
func Sort(diags []Diagnostic) {
	sort.SliceStable(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		if a.Code != b.Code {
			return a.Code < b.Code
		}
		return a.Msg < b.Msg
	})
}

// Filter returns the diagnostics at or above the given severity.
func Filter(diags []Diagnostic, min Severity) []Diagnostic {
	var out []Diagnostic
	for _, d := range diags {
		if d.Severity >= min {
			out = append(out, d)
		}
	}
	return out
}

// ErrorCount returns the number of SevError diagnostics.
func ErrorCount(diags []Diagnostic) int {
	n := 0
	for _, d := range diags {
		if d.Severity == SevError {
			n++
		}
	}
	return n
}

// Stable diagnostic codes. Codes are append-only: a released code keeps
// its meaning forever so CI gates and suppressions stay valid.
const (
	CodeParse           = "CAPL0000" // source does not parse
	CodeDuplicateDecl   = "CAPL0001" // duplicate declaration
	CodeUndeclared      = "CAPL0002" // reference to undeclared identifier
	CodeUseBeforeDecl   = "CAPL0003" // local used before its declaration
	CodeUnreachable     = "CAPL0004" // statement can never execute
	CodeDeadStore       = "CAPL0005" // value stored is never read
	CodeUninitRead      = "CAPL0006" // local read before any assignment
	CodeUnknownFunc     = "CAPL0007" // call to unknown function (abstracted)
	CodeOrphanTimer     = "CAPL0008" // timer set but no `on timer` handler
	CodeUnfiredTimer    = "CAPL0009" // `on timer` handler for timer never set
	CodeBadTimerArg     = "CAPL0010" // timer argument/target not a declared timer
	CodeBadOutputArg    = "CAPL0011" // output() argument not a declared message
	CodeUnknownMsgVar   = "CAPL0012" // `on message` target not declared
	CodeDBUnknownMsg    = "CAPL0013" // message not found in CAN database
	CodeDBSignalWidth   = "CAPL0014" // signal write exceeds declared bit width
	CodeDBUnknownSignal = "CAPL0015" // signal not declared for the message
	CodeAbstractedCond  = "CAPL0016" // data-dependent branching abstracted
	CodeAbstractedLoop  = "CAPL0017" // loop over-approximated
	CodeDroppedHandler  = "CAPL0018" // handler outside the network model
	CodeInexactDuration = "CAPL0019" // non-constant timer duration
	CodeRecursiveFunc   = "CAPL0020" // recursive function cannot be inlined
	CodeBadOutputArity  = "CAPL0021" // output() takes exactly one argument
	CodeThisOutsideMsg  = "CAPL0022" // `this` outside an `on message` handler
	CodeEmptyNode       = "CAPL0023" // node has no handlers; model is STOP

	// Typechecker codes (the CAPL0100+ range). CAPL has no declared type
	// system of its own; these diagnostics come from the typecheck pass
	// (typecheck.go) that closes ROADMAP item 5.
	CodeTypeMismatch   = "CAPL0100" // operand/assignment type class mismatch
	CodeNarrowing      = "CAPL0101" // implicit lossy narrowing conversion
	CodeConstOverflow  = "CAPL0102" // constant does not fit the target type
	CodeCallArity      = "CAPL0103" // wrong argument count in function call
	CodeCallArgType    = "CAPL0104" // argument type incompatible with parameter
	CodeBadReturn      = "CAPL0105" // return disagrees with declared return type
	CodeArrayMisuse    = "CAPL0106" // bad indexing, bounds or array-as-scalar use
	CodeBadCondition   = "CAPL0107" // condition or switch tag is not numeric
	CodeSignalNarrow   = "CAPL0108" // expression type wider than the signal bit width
	CodeBadBuiltinArg  = "CAPL0109" // builtin called with a wrongly typed argument
)

// CatalogEntry documents one lint code.
type CatalogEntry struct {
	Code     string
	Severity Severity
	Title    string
}

// Catalog lists every diagnostic the analyzer can emit, in code order.
// EXPERIMENTS.md renders this table; the severity column is the default
// severity the analyzer assigns.
func Catalog() []CatalogEntry {
	return []CatalogEntry{
		{CodeParse, SevError, "source does not parse"},
		{CodeDuplicateDecl, SevError, "duplicate declaration"},
		{CodeUndeclared, SevError, "reference to undeclared identifier"},
		{CodeUseBeforeDecl, SevError, "local variable used before its declaration"},
		{CodeUnreachable, SevWarning, "statement can never execute"},
		{CodeDeadStore, SevWarning, "stored value is never read"},
		{CodeUninitRead, SevWarning, "local read before any assignment (implicitly zero)"},
		{CodeUnknownFunc, SevError, "call to unknown function would be abstracted away"},
		{CodeOrphanTimer, SevWarning, "timer is set but has no `on timer` handler"},
		{CodeUnfiredTimer, SevWarning, "`on timer` handler for a timer that is never set"},
		{CodeBadTimerArg, SevError, "timer argument is not a declared timer"},
		{CodeBadOutputArg, SevError, "output() argument is not a declared message variable"},
		{CodeUnknownMsgVar, SevError, "`on message` target is not declared"},
		{CodeDBUnknownMsg, SevWarning, "message is not declared in the CAN database"},
		{CodeDBSignalWidth, SevError, "signal write exceeds the declared bit width"},
		{CodeDBUnknownSignal, SevWarning, "signal is not declared for the message"},
		{CodeAbstractedCond, SevInfo, "data-dependent branching abstracted to internal choice"},
		{CodeAbstractedLoop, SevInfo, "loop over-approximated as zero-or-more iterations"},
		{CodeDroppedHandler, SevInfo, "handler is outside the extracted network model"},
		{CodeInexactDuration, SevInfo, "non-constant timer duration approximated"},
		{CodeRecursiveFunc, SevError, "recursive function cannot be inlined"},
		{CodeBadOutputArity, SevError, "output() takes exactly one message argument"},
		{CodeThisOutsideMsg, SevError, "`this` used outside an `on message` handler"},
		{CodeEmptyNode, SevWarning, "node has no message or timer handlers; model is STOP"},
		{CodeTypeMismatch, SevError, "operand or assignment type mismatch"},
		{CodeNarrowing, SevWarning, "implicit conversion may lose value range or sign"},
		{CodeConstOverflow, SevError, "constant value does not fit the target type"},
		{CodeCallArity, SevError, "wrong number of arguments in function call"},
		{CodeCallArgType, SevError, "argument type is incompatible with the parameter"},
		{CodeBadReturn, SevError, "return statement disagrees with the declared return type"},
		{CodeArrayMisuse, SevError, "array indexed, bounded or used incorrectly"},
		{CodeBadCondition, SevError, "condition or switch tag is not a numeric value"},
		{CodeSignalNarrow, SevWarning, "expression range exceeds the declared signal bit width"},
		{CodeBadBuiltinArg, SevError, "built-in function called with a wrongly typed argument"},
	}
}

// SeverityOf returns the catalog's default severity for a code
// (SevWarning for unknown codes).
func SeverityOf(code string) Severity {
	for _, e := range Catalog() {
		if e.Code == code {
			return e.Severity
		}
	}
	return SevWarning
}
