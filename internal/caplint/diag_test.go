package caplint

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestSeverityRoundTrip(t *testing.T) {
	for _, s := range []Severity{SevInfo, SevWarning, SevError} {
		parsed, err := ParseSeverity(s.String())
		if err != nil || parsed != s {
			t.Errorf("ParseSeverity(%q) = %v, %v", s, parsed, err)
		}
		b, err := json.Marshal(s)
		if err != nil {
			t.Fatal(err)
		}
		var back Severity
		if err := json.Unmarshal(b, &back); err != nil || back != s {
			t.Errorf("JSON round trip of %v = %v, %v", s, back, err)
		}
	}
	if _, err := ParseSeverity("fatal"); err == nil {
		t.Error("unknown severity accepted")
	}
	var s Severity
	if err := json.Unmarshal([]byte(`"bogus"`), &s); err == nil {
		t.Error("bogus JSON severity accepted")
	}
}

func TestDiagnosticString(t *testing.T) {
	d := Diagnostic{Code: CodeDeadStore, Severity: SevWarning,
		File: "a.can", Line: 3, Col: 7, Msg: "dead"}
	if got, want := d.String(), "a.can:3:7: warning: dead [CAPL0005]"; got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
	d = Diagnostic{Code: CodeEmptyNode, Severity: SevWarning, Msg: "empty"}
	if got, want := d.String(), "warning: empty [CAPL0023]"; got != want {
		t.Errorf("positionless String() = %q, want %q", got, want)
	}
}

func TestSortAndFilter(t *testing.T) {
	diags := []Diagnostic{
		{File: "b.can", Line: 1, Code: "CAPL0002", Severity: SevError},
		{File: "a.can", Line: 9, Code: "CAPL0005", Severity: SevWarning},
		{File: "a.can", Line: 2, Col: 5, Code: "CAPL0016", Severity: SevInfo},
		{File: "a.can", Line: 2, Col: 1, Code: "CAPL0004", Severity: SevWarning},
	}
	Sort(diags)
	var order []string
	for _, d := range diags {
		order = append(order, d.Code)
	}
	if got := strings.Join(order, ","); got != "CAPL0004,CAPL0016,CAPL0005,CAPL0002" {
		t.Errorf("sort order = %s", got)
	}
	if n := len(Filter(diags, SevWarning)); n != 3 {
		t.Errorf("Filter(warning) = %d findings, want 3", n)
	}
	if n := ErrorCount(diags); n != 1 {
		t.Errorf("ErrorCount = %d, want 1", n)
	}
}

// TestCatalogIsComplete pins the catalog's shape: codes are unique,
// ordered, and SeverityOf agrees with the table.
func TestCatalogIsComplete(t *testing.T) {
	cat := Catalog()
	if len(cat) != 34 {
		t.Errorf("catalog has %d entries, want 34 (CAPL0000..0023 + CAPL0100..0109)", len(cat))
	}
	seen := map[string]bool{}
	prev := ""
	for _, e := range cat {
		if seen[e.Code] {
			t.Errorf("duplicate code %s", e.Code)
		}
		seen[e.Code] = true
		if e.Code <= prev {
			t.Errorf("catalog out of order at %s", e.Code)
		}
		prev = e.Code
		if SeverityOf(e.Code) != e.Severity {
			t.Errorf("SeverityOf(%s) = %v, want %v", e.Code, SeverityOf(e.Code), e.Severity)
		}
		if e.Title == "" {
			t.Errorf("%s has no title", e.Code)
		}
	}
	if SeverityOf("CAPL9999") != SevWarning {
		t.Error("unknown code should default to warning")
	}
}
