package caplint

import (
	"fmt"

	"repro/internal/candb"
	"repro/internal/capl"
)

// This file is the CAPL typechecker pass (the CAPL0100+ codes): a type
// lattice over the declared CAPL types, implicit-conversion rules with
// lossy-narrowing warnings, CANdb signal-width agreement for
// non-constant writes, call-site arity/argument checking for user
// functions and the timer/builtin API, and return-type checking.
//
// Two deliberate silences keep the pass composable with the earlier
// ones: an unresolved name types as tyInvalid and produces nothing here
// (the resolver already reported CAPL0002/0003), and constant writes to
// CANdb signals are left to the existing CAPL0014 range check. CAPL's
// own compiler is forgiving about numeric mixing, so plain width-safe
// conversions are accepted; only conversions that can lose value range,
// sign or fractional part are reported, and only when the source type
// is actually known (an expression of unknown width never warns).

// tyClass partitions the CAPL types by how values may be used.
type tyClass int

const (
	tyInvalid tyClass = iota // unresolved or already-reported: stays silent
	tyNumeric
	tyMessage
	tyTimer
	tyString
	tyArray
	tyVoid
)

// ty is the inferred type of an expression.
type ty struct {
	class tyClass
	// Numeric info. bits is 0 when the width is unknown (literals,
	// comparison results, unknown signals); unknown widths never warn.
	bits   int
	signed bool
	float  bool
	// name is the CAPL spelling used in diagnostics ("long", "byte[8]").
	name string
	// spec is the declared type for arrays (indexing strips dimensions).
	spec capl.TypeSpec
	// msgDecl/msgID locate the CANdb message for signal selectors:
	// msgDecl for `message X m` variables, msgID for `this` inside
	// `on message 0x123`. msgID is -1 when unknown.
	msgDecl *capl.VarDecl
	msgID   int64
	// isSignal marks a CANdb signal lvalue (bits = declared signal
	// length); narrowing into one reports CAPL0108, not CAPL0101.
	isSignal bool
	sigRef   string // "Message.Signal" for diagnostics
}

func (t ty) String() string {
	if t.name != "" {
		return t.name
	}
	switch t.class {
	case tyNumeric:
		return "numeric"
	case tyMessage:
		return "message"
	case tyTimer:
		return "timer"
	case tyString:
		return "string"
	case tyArray:
		return "array"
	case tyVoid:
		return "void"
	}
	return "unknown"
}

// tyOfSpec maps a declared TypeSpec onto the lattice.
func tyOfSpec(t capl.TypeSpec) ty {
	if len(t.ArrayDims) > 0 {
		return ty{class: tyArray, spec: t, name: t.String()}
	}
	switch t.Base {
	case capl.TypeByte:
		return ty{class: tyNumeric, bits: 8, name: "byte"}
	case capl.TypeChar:
		return ty{class: tyNumeric, bits: 8, signed: true, name: "char"}
	case capl.TypeInt:
		return ty{class: tyNumeric, bits: 16, signed: true, name: "int"}
	case capl.TypeWord:
		return ty{class: tyNumeric, bits: 16, name: "word"}
	case capl.TypeLong:
		return ty{class: tyNumeric, bits: 32, signed: true, name: "long"}
	case capl.TypeDword:
		return ty{class: tyNumeric, bits: 32, name: "dword"}
	case capl.TypeFloat:
		return ty{class: tyNumeric, float: true, name: "float"}
	case capl.TypeDouble:
		return ty{class: tyNumeric, float: true, name: "double"}
	case capl.TypeVoid:
		return ty{class: tyVoid, name: "void"}
	case capl.TypeMessage:
		return ty{class: tyMessage, name: "message", msgID: -1}
	case capl.TypeMsTimer, capl.TypeTimer:
		return ty{class: tyTimer, name: t.Base.String()}
	}
	return ty{class: tyInvalid}
}

// numAny is a numeric value of unknown width: it participates in
// arithmetic but never triggers narrowing warnings.
func numAny() ty { return ty{class: tyNumeric, name: "int"} }

// definite reports whether the class is known well enough to complain
// about (tyInvalid means an earlier pass already did).
func (t ty) definite() bool { return t.class != tyInvalid }

// numRange returns the representable range of a known-width integer
// type; ok is false for floats and unknown widths.
func numRange(t ty) (lo, hi int64, ok bool) {
	if t.float || t.bits <= 0 {
		return 0, 0, false
	}
	lo, hi = signalRawRange(t.signed, t.bits)
	return lo, hi, true
}

// fitsWithin reports whether every value of rt is representable in lt.
// Unknown widths conservatively fit (silence over noise).
func fitsWithin(rt, lt ty) bool {
	if lt.float {
		return true
	}
	if rt.float {
		return false
	}
	rlo, rhi, rok := numRange(rt)
	llo, lhi, lok := numRange(lt)
	if !rok || !lok {
		return true
	}
	return rlo >= llo && rhi <= lhi
}

// mergeNum is the principal type of a binary arithmetic expression:
// float beats integer, wider beats narrower, and a known-width operand
// beats an unknown one. The sign bit is sticky — mixing a signed and an
// unsigned operand of the same width yields a signed result, which is
// what makes the later range check sound.
func mergeNum(l, r ty) ty {
	if l.class != tyNumeric {
		return r
	}
	if r.class != tyNumeric {
		return l
	}
	if l.float || r.float {
		out := ty{class: tyNumeric, float: true, name: "double"}
		if l.float {
			out.name = l.name
		} else if r.float {
			out.name = r.name
		}
		return out
	}
	if l.bits == 0 && r.bits == 0 {
		return numAny()
	}
	if l.bits == 0 {
		return ty{class: tyNumeric, bits: r.bits, signed: r.signed, name: r.name}
	}
	if r.bits == 0 {
		return ty{class: tyNumeric, bits: l.bits, signed: l.signed, name: l.name}
	}
	wider := l
	if r.bits > l.bits {
		wider = r
	}
	return ty{class: tyNumeric, bits: wider.bits, signed: l.signed || r.signed, name: wider.name}
}

// checkTypes is the typechecker pass entry point: global initialisers,
// then every handler and function body.
func (a *analysis) checkTypes() {
	for _, v := range a.prog.Variables {
		if v.Init == nil {
			continue
		}
		tc := &tchecker{a: a, thisID: -1}
		rt := tc.expr(v.Init, nil)
		tc.checkAssign(tyOfSpec(v.Type), rt, v.Init, true, v.Line, v.Col)
	}
	for _, h := range a.prog.Handlers {
		tc := &tchecker{a: a, thisID: -1}
		if h.Kind == capl.OnMessage {
			tc.inMsgHandler = true
			tc.thisID = h.TargetID
			if h.Target != "" && h.Target != "*" && h.TargetID < 0 {
				if sym, ok := a.syms.globals[h.Target]; ok && sym.kind == symMessage {
					tc.thisDecl = sym.decl
				}
			}
		}
		tc.block(h.Body, nil)
	}
	for _, f := range a.prog.Functions {
		tc := &tchecker{a: a, thisID: -1, fn: f}
		top := &scope{names: map[string]*symbol{}}
		for _, p := range f.Params {
			top.names[p.Name] = &symbol{name: p.Name, kind: symParam, typ: p.Type, decl: p, at: pos{p.Line, p.Col}}
		}
		tc.block(f.Body, top)
		ret := tyOfSpec(f.Return)
		if ret.class != tyVoid && ret.definite() && !tc.sawValueReturn {
			a.report(CodeBadReturn, SevError, f.Line, f.Col,
				"function %q is declared to return %s but never returns a value", f.Name, ret)
		}
	}
}

// tchecker walks one handler or function body with a lexical scope
// chain mirroring the resolver's.
type tchecker struct {
	a *analysis
	// this-context for `on message` handlers.
	inMsgHandler bool
	thisDecl     *capl.VarDecl
	thisID       int64
	// fn is the enclosing function; nil inside handlers.
	fn             *capl.FuncDecl
	sawValueReturn bool
}

func (tc *tchecker) report(code string, sev Severity, line, col int, format string, args ...any) {
	tc.a.report(code, sev, line, col, format, args...)
}

// lookup resolves a name through the scope chain, then the globals,
// without reporting (the resolver already did).
func (tc *tchecker) lookup(name string, sc *scope) (*symbol, bool) {
	if sc != nil {
		if sym, ok := sc.lookup(name); ok {
			return sym, true
		}
	}
	sym, ok := tc.a.syms.globals[name]
	return sym, ok
}

func (tc *tchecker) block(b *capl.BlockStmt, parent *scope) {
	sc := &scope{parent: parent, names: map[string]*symbol{}}
	for _, s := range b.Stmts {
		tc.stmt(s, sc)
	}
}

func (tc *tchecker) stmt(s capl.Stmt, sc *scope) {
	switch x := s.(type) {
	case *capl.BlockStmt:
		tc.block(x, sc)
	case *capl.DeclStmt:
		for _, d := range x.Decls {
			if d.Init != nil {
				rt := tc.expr(d.Init, sc)
				tc.checkAssign(tyOfSpec(d.Type), rt, d.Init, true, d.Line, d.Col)
			}
			sc.names[d.Name] = &symbol{name: d.Name, kind: kindOf(d.Type), typ: d.Type, decl: d, at: pos{d.Line, d.Col}}
		}
	case *capl.ExprStmt:
		tc.expr(x.X, sc)
	case *capl.IfStmt:
		tc.cond(x.Cond, sc, "if condition")
		tc.stmt(x.Then, sc)
		if x.Else != nil {
			tc.stmt(x.Else, sc)
		}
	case *capl.WhileStmt:
		tc.cond(x.Cond, sc, "while condition")
		tc.stmt(x.Body, sc)
	case *capl.DoWhileStmt:
		tc.stmt(x.Body, sc)
		tc.cond(x.Cond, sc, "do-while condition")
	case *capl.ForStmt:
		inner := &scope{parent: sc, names: map[string]*symbol{}}
		if x.Init != nil {
			tc.stmt(x.Init, inner)
		}
		if x.Cond != nil {
			tc.cond(x.Cond, inner, "for condition")
		}
		if x.Post != nil {
			tc.expr(x.Post, inner)
		}
		tc.stmt(x.Body, inner)
	case *capl.SwitchStmt:
		tc.cond(x.Tag, sc, "switch tag")
		for _, c := range x.Cases {
			if c.Value != nil {
				tc.requireNumeric(tc.expr(c.Value, sc), exprPos(c.Value), "case value")
			}
			inner := &scope{parent: sc, names: map[string]*symbol{}}
			for _, st := range c.Stmts {
				tc.stmt(st, inner)
			}
		}
	case *capl.ReturnStmt:
		tc.checkReturn(x, sc)
	case *capl.BreakStmt, *capl.ContinueStmt:
	}
}

// cond types a condition-position expression and requires it numeric.
func (tc *tchecker) cond(e capl.Expr, sc *scope, ctx string) {
	t := tc.expr(e, sc)
	if t.definite() && t.class != tyNumeric {
		at := exprPos(e)
			line, col := at[0], at[1]
		tc.report(CodeBadCondition, SevError, line, col,
			"%s is %s, not a numeric value", ctx, t)
	}
}

// checkReturn validates one return statement against the enclosing
// declaration (handler or function).
func (tc *tchecker) checkReturn(x *capl.ReturnStmt, sc *scope) {
	var rt ty
	if x.X != nil {
		rt = tc.expr(x.X, sc)
	}
	if tc.fn == nil {
		if x.X != nil {
			tc.report(CodeBadReturn, SevError, x.Line, x.Col,
				"event handlers cannot return a value")
		}
		return
	}
	ret := tyOfSpec(tc.fn.Return)
	if ret.class == tyVoid {
		if x.X != nil {
			tc.report(CodeBadReturn, SevError, x.Line, x.Col,
				"void function %q returns a value", tc.fn.Name)
		}
		return
	}
	if x.X == nil {
		tc.report(CodeBadReturn, SevError, x.Line, x.Col,
			"missing return value in function %q (declared %s)", tc.fn.Name, ret)
		return
	}
	tc.sawValueReturn = true
	if rt.definite() && ret.definite() && rt.class != ret.class {
		tc.report(CodeBadReturn, SevError, x.Line, x.Col,
			"returning %s from function %q declared to return %s", rt, tc.fn.Name, ret)
	}
}

// requireNumeric reports a definite non-numeric type used where a
// number is needed. Arrays get the array-misuse code; everything else
// the general mismatch code.
func (tc *tchecker) requireNumeric(t ty, at [2]int, ctx string) bool {
	if !t.definite() || t.class == tyNumeric {
		return true
	}
	code := CodeTypeMismatch
	if t.class == tyArray {
		code = CodeArrayMisuse
	}
	tc.report(code, SevError, at[0], at[1], "%s value used as %s", t, ctx)
	return false
}

// checkAssign validates storing rt into lt. declInit permits the
// `char name[n] = "literal"` initialiser form.
func (tc *tchecker) checkAssign(lt, rt ty, rhs capl.Expr, declInit bool, line, col int) {
	if !lt.definite() {
		return
	}
	switch lt.class {
	case tyArray:
		if declInit && lt.spec.Base == capl.TypeChar && rt.class == tyString {
			return // char buffer initialised from a string literal
		}
		tc.report(CodeArrayMisuse, SevError, line, col,
			"cannot assign to %s as a whole; assign to its elements", lt)
	case tyMessage:
		if rt.definite() && rt.class != tyMessage {
			tc.report(CodeTypeMismatch, SevError, line, col,
				"cannot assign %s to a message variable", rt)
		}
	case tyTimer:
		tc.report(CodeTypeMismatch, SevError, line, col,
			"timers cannot be assigned; use setTimer()/cancelTimer()")
	case tyNumeric:
		if rt.definite() && rt.class != tyNumeric {
			code := CodeTypeMismatch
			if rt.class == tyArray {
				code = CodeArrayMisuse
			}
			tc.report(code, SevError, line, col,
				"cannot assign %s to %s", rt, lt)
			return
		}
		if rt.class != tyNumeric {
			return
		}
		tc.checkNarrowing(lt, rt, rhs, line, col)
	}
}

// checkNarrowing applies the numeric conversion rules for one store:
// a constant that does not fit is an error (CAPL0102), a non-constant
// source of a known wider type is a lossy-narrowing warning (CAPL0101),
// and a non-constant store into a CANdb signal lvalue that can exceed
// the raw range is the signal-width warning (CAPL0108).
func (tc *tchecker) checkNarrowing(lt, rt ty, rhs capl.Expr, line, col int) {
	if v, isConst := constEvalLint(rhs); isConst {
		if lt.isSignal {
			return // constant signal writes are CAPL0014's range check
		}
		if lo, hi, ok := numRange(lt); ok && (v < lo || v > hi) {
			tc.report(CodeConstOverflow, SevError, line, col,
				"constant %d does not fit %s (range %d..%d)", v, lt, lo, hi)
		}
		return
	}
	if fitsWithin(rt, lt) {
		return
	}
	if lt.isSignal {
		lo, hi, _ := numRange(lt)
		tc.report(CodeSignalNarrow, SevWarning, line, col,
			"%s expression may exceed signal %s (%d bit%s, raw range %d..%d)",
			rt, lt.sigRef, lt.bits, plural(lt.bits), lo, hi)
		return
	}
	why := "value range"
	if rt.float && !lt.float {
		why = "the fractional part"
	}
	tc.report(CodeNarrowing, SevWarning, line, col,
		"implicit conversion from %s to %s may lose %s", rt, lt, why)
}

// expr infers the type of an expression, reporting type errors as it
// goes. It is total over the AST (FuzzTypecheck pins this) and never
// reports through a tyInvalid operand.
func (tc *tchecker) expr(e capl.Expr, sc *scope) ty {
	switch x := e.(type) {
	case nil:
		return ty{}
	case *capl.IntLit:
		return numAny()
	case *capl.FloatLit:
		return ty{class: tyNumeric, float: true, name: "double"}
	case *capl.StrLit:
		return ty{class: tyString, name: "string"}
	case *capl.Ident:
		sym, ok := tc.lookup(x.Name, sc)
		if !ok {
			return ty{}
		}
		t := tyOfSpec(sym.typ)
		if t.class == tyMessage {
			t.msgDecl = sym.decl
		}
		return t
	case *capl.ThisExpr:
		return ty{class: tyMessage, name: "message", msgDecl: tc.thisDecl, msgID: tc.thisID}
	case *capl.BinaryExpr:
		return tc.binary(x, sc)
	case *capl.UnaryExpr:
		t := tc.expr(x.X, sc)
		switch x.Op {
		case capl.BANG:
			tc.requireNumeric(t, [2]int{x.Line, x.Col}, "a logical operand")
			return numAny()
		case capl.MINUS:
			if tc.requireNumeric(t, [2]int{x.Line, x.Col}, "an arithmetic operand") && t.class == tyNumeric {
				t.signed = true
				return t
			}
			return numAny()
		case capl.TILDE:
			tc.requireNumeric(t, [2]int{x.Line, x.Col}, "a bitwise operand")
			return t
		case capl.INC, capl.DEC:
			tc.requireNumeric(t, [2]int{x.Line, x.Col}, "an increment/decrement operand")
			return t
		}
		return t
	case *capl.PostfixExpr:
		t := tc.expr(x.X, sc)
		tc.requireNumeric(t, [2]int{x.Line, x.Col}, "an increment/decrement operand")
		return t
	case *capl.AssignExpr:
		lt := tc.expr(x.L, sc)
		rt := tc.expr(x.R, sc)
		if lt.class == tyMessage && x.Op != capl.ASSIGN {
			tc.report(CodeTypeMismatch, SevError, x.Line, x.Col,
				"compound assignment is not defined for message variables")
			return lt
		}
		if x.Op == capl.ASSIGN {
			tc.checkAssign(lt, rt, x.R, false, x.Line, x.Col)
		} else {
			// Compound assignment folds an arithmetic step in: the
			// effective source type is the merge of both sides.
			if tc.requireNumeric(lt, [2]int{x.Line, x.Col}, "a compound-assignment target") &&
				tc.requireNumeric(rt, [2]int{x.Line, x.Col}, "a compound-assignment operand") &&
				lt.class == tyNumeric && rt.class == tyNumeric {
				tc.checkNarrowing(lt, mergeNum(lt, rt), x, x.Line, x.Col)
			}
		}
		return lt
	case *capl.CondExpr:
		tc.cond(x.Cond, sc, "ternary condition")
		tt := tc.expr(x.Then, sc)
		et := tc.expr(x.Else, sc)
		if tt.class == tyNumeric && et.class == tyNumeric {
			return mergeNum(tt, et)
		}
		if tt.definite() && et.definite() && tt.class != et.class {
			tc.report(CodeTypeMismatch, SevError, x.Line, x.Col,
				"ternary arms have mismatched types (%s and %s)", tt, et)
			return ty{}
		}
		if tt.definite() {
			return tt
		}
		return et
	case *capl.CallExpr:
		return tc.call(x, sc)
	case *capl.MemberExpr:
		return tc.member(x, sc)
	case *capl.IndexExpr:
		return tc.index(x, sc)
	}
	return ty{}
}

// binary types a binary operation. Comparisons and logical connectives
// yield a width-free numeric 0/1; arithmetic and bitwise operations
// yield the merged principal type; shifts keep the left operand's type.
func (tc *tchecker) binary(x *capl.BinaryExpr, sc *scope) ty {
	l := tc.expr(x.L, sc)
	r := tc.expr(x.R, sc)
	switch x.Op {
	case capl.EQ, capl.NE, capl.LT, capl.LE, capl.GT, capl.GE:
		tc.requireNumeric(l, exprPos(x.L), "a comparison operand")
		tc.requireNumeric(r, exprPos(x.R), "a comparison operand")
		return numAny()
	case capl.ANDAND, capl.OROR:
		tc.requireNumeric(l, exprPos(x.L), "a logical operand")
		tc.requireNumeric(r, exprPos(x.R), "a logical operand")
		return numAny()
	case capl.SHL, capl.SHR:
		tc.requireNumeric(l, exprPos(x.L), "a shift operand")
		tc.requireNumeric(r, exprPos(x.R), "a shift amount")
		if l.class == tyNumeric {
			return l
		}
		return numAny()
	default:
		tc.requireNumeric(l, exprPos(x.L), "an arithmetic operand")
		tc.requireNumeric(r, exprPos(x.R), "an arithmetic operand")
		if l.class == tyNumeric && r.class == tyNumeric {
			return mergeNum(l, r)
		}
		return numAny()
	}
}

// builtinFieldTy maps the translator-supported message selectors to
// their types; ok is false for .dbc signal selectors.
func builtinFieldTy(field string) (ty, bool) {
	switch field {
	case "ID", "id":
		return ty{class: tyNumeric, bits: 32, name: "dword"}, true
	case "DLC", "dlc":
		return ty{class: tyNumeric, bits: 8, name: "byte"}, true
	case "byte":
		return ty{class: tyNumeric, bits: 8, name: "byte"}, true
	case "word":
		return ty{class: tyNumeric, bits: 16, name: "word"}, true
	case "dword":
		return ty{class: tyNumeric, bits: 32, name: "dword"}, true
	case "long":
		return ty{class: tyNumeric, bits: 32, signed: true, name: "long"}, true
	case "int":
		return ty{class: tyNumeric, bits: 16, signed: true, name: "int"}, true
	case "char":
		return ty{class: tyNumeric, bits: 8, signed: true, name: "char"}, true
	}
	return ty{}, false
}

// member types m.field and m.sel(i): builtin selectors carry their
// fixed widths, anything else is looked up as a CANdb signal when a
// database and the message's identity are known.
func (tc *tchecker) member(x *capl.MemberExpr, sc *scope) ty {
	mt := tc.expr(x.X, sc)
	for _, arg := range x.Args {
		at := tc.expr(arg, sc)
		tc.requireNumeric(at, exprPos(arg), fmt.Sprintf("the index of .%s()", x.Field))
	}
	if mt.definite() && mt.class != tyMessage {
		code := CodeTypeMismatch
		if mt.class == tyArray {
			code = CodeArrayMisuse
		}
		tc.report(code, SevError, x.Line, x.Col,
			"selector .%s on %s value (selectors need a message)", x.Field, mt)
		return ty{}
	}
	if ft, ok := builtinFieldTy(x.Field); ok {
		if x.IsCall && len(x.Args) != 1 {
			tc.report(CodeBadBuiltinArg, SevError, x.Line, x.Col,
				".%s() selector takes exactly one byte-offset argument, got %d", x.Field, len(x.Args))
		}
		return ft
	}
	if mt.class != tyMessage {
		return ty{}
	}
	if sig, msg, ok := tc.signalOf(mt, x.Field); ok {
		return ty{
			class: tyNumeric, bits: sig.Length, signed: sig.Signed,
			name:     fmt.Sprintf("signal %s.%s", msg.Name, sig.Name),
			isSignal: true, sigRef: fmt.Sprintf("%s.%s", msg.Name, sig.Name),
		}
	}
	// Unknown signal (or no database): numeric of unknown width, and
	// CAPL0015 has the missing-signal report.
	return numAny()
}

// signalOf resolves a message-typed value's CANdb signal.
func (tc *tchecker) signalOf(mt ty, field string) (*candb.Signal, *candb.Message, bool) {
	db := tc.a.opts.DB
	if db == nil {
		return nil, nil, false
	}
	var msg *candb.Message
	var ok bool
	switch {
	case mt.msgDecl != nil:
		msg, ok = tc.a.dbMessageOf(mt.msgDecl)
	case mt.msgID >= 0:
		msg, ok = db.MessageByID(uint32(mt.msgID))
	}
	if !ok || msg == nil {
		return nil, nil, false
	}
	sig, ok := msg.Signal(field)
	if !ok {
		return nil, nil, false
	}
	return sig, msg, true
}

// index types a[i], checking that a is an array, i is numeric, and a
// constant index stays inside a sized dimension.
func (tc *tchecker) index(x *capl.IndexExpr, sc *scope) ty {
	at := tc.expr(x.X, sc)
	it := tc.expr(x.Index, sc)
	if it.definite() && it.class != tyNumeric {
		at := exprPos(x.Index)
			line, col := at[0], at[1]
		tc.report(CodeArrayMisuse, SevError, line, col,
			"array index is %s, not a numeric value", it)
	}
	if !at.definite() {
		return ty{}
	}
	if at.class != tyArray {
		tc.report(CodeArrayMisuse, SevError, x.Line, x.Col,
			"cannot index %s value (not an array)", at)
		return ty{}
	}
	if dim := at.spec.ArrayDims[0]; dim > 0 {
		if v, isConst := constEvalLint(x.Index); isConst && (v < 0 || v >= int64(dim)) {
			tc.report(CodeArrayMisuse, SevError, x.Line, x.Col,
				"constant index %d is out of bounds for %s (valid: 0..%d)", v, at, dim-1)
		}
	}
	if len(at.spec.ArrayDims) > 1 {
		rest := capl.TypeSpec{Base: at.spec.Base, ArrayDims: at.spec.ArrayDims[1:]}
		return tyOfSpec(rest)
	}
	return tyOfSpec(capl.TypeSpec{Base: at.spec.Base})
}

// call types a call expression: builtin signatures are checked here
// (CAPL0109, complementing the resolver's CAPL0010/0011/0021 shape
// checks), user functions get arity (CAPL0103) and per-argument
// (CAPL0104) checks against the declaration. Unknown functions stay
// silent — CAPL0007 owns them.
func (tc *tchecker) call(x *capl.CallExpr, sc *scope) ty {
	args := make([]ty, len(x.Args))
	for i, arg := range x.Args {
		args[i] = tc.expr(arg, sc)
	}
	switch x.Fun {
	case "output":
		// Arity and message-ness are the resolver's CAPL0021/0011.
		return ty{class: tyVoid, name: "void"}
	case "setTimer":
		if len(x.Args) != 2 {
			tc.report(CodeBadBuiltinArg, SevError, x.Line, x.Col,
				"setTimer() expects (timer, duration), got %d argument%s", len(x.Args), plural(len(x.Args)))
		} else if args[1].definite() && args[1].class != tyNumeric {
			at := exprPos(x.Args[1])
			line, col := at[0], at[1]
			tc.report(CodeBadBuiltinArg, SevError, line, col,
				"setTimer() duration is %s, not a numeric value", args[1])
		}
		return ty{class: tyVoid, name: "void"}
	case "cancelTimer":
		if len(x.Args) != 1 {
			tc.report(CodeBadBuiltinArg, SevError, x.Line, x.Col,
				"cancelTimer() expects exactly one timer argument, got %d", len(x.Args))
		}
		return ty{class: tyVoid, name: "void"}
	case "write":
		if len(x.Args) >= 1 && args[0].definite() && args[0].class != tyString {
			at := exprPos(x.Args[0])
			line, col := at[0], at[1]
			tc.report(CodeBadBuiltinArg, SevError, line, col,
				"write() format argument is %s, not a string", args[0])
		}
		return ty{class: tyVoid, name: "void"}
	case "writeEx", "writeLineEx":
		return ty{class: tyVoid, name: "void"}
	}
	fn, ok := tc.a.prog.Function(x.Fun)
	if !ok {
		return ty{} // unknown function: CAPL0007's report
	}
	if len(x.Args) != len(fn.Params) {
		tc.report(CodeCallArity, SevError, x.Line, x.Col,
			"%s() expects %d argument%s, got %d", fn.Name, len(fn.Params), plural(len(fn.Params)), len(x.Args))
		return tyOfSpec(fn.Return)
	}
	for i, p := range fn.Params {
		pt := tyOfSpec(p.Type)
		at := args[i]
		if !pt.definite() || !at.definite() {
			continue
		}
		if pt.class != at.class {
			tc.report(CodeCallArgType, SevError, exprLine(x.Args[i]), exprCol(x.Args[i]),
				"argument %d of %s(): cannot pass %s as %s %q", i+1, fn.Name, at, pt, p.Name)
			continue
		}
		if pt.class == tyNumeric {
			tc.checkNarrowing(pt, at, x.Args[i], exprLine(x.Args[i]), exprCol(x.Args[i]))
		}
	}
	return tyOfSpec(fn.Return)
}

// exprPos returns the source position of an expression for reporting.
func exprPos(e capl.Expr) [2]int {
	return [2]int{exprLine(e), exprCol(e)}
}

func exprLine(e capl.Expr) int {
	switch x := e.(type) {
	case *capl.IntLit:
		return x.Line
	case *capl.FloatLit:
		return x.Line
	case *capl.StrLit:
		return x.Line
	case *capl.Ident:
		return x.Line
	case *capl.ThisExpr:
		return x.Line
	case *capl.BinaryExpr:
		return x.Line
	case *capl.UnaryExpr:
		return x.Line
	case *capl.PostfixExpr:
		return x.Line
	case *capl.AssignExpr:
		return x.Line
	case *capl.CondExpr:
		return x.Line
	case *capl.CallExpr:
		return x.Line
	case *capl.MemberExpr:
		return x.Line
	case *capl.IndexExpr:
		return x.Line
	}
	return 0
}

func exprCol(e capl.Expr) int {
	switch x := e.(type) {
	case *capl.IntLit:
		return x.Col
	case *capl.FloatLit:
		return x.Col
	case *capl.StrLit:
		return x.Col
	case *capl.Ident:
		return x.Col
	case *capl.ThisExpr:
		return x.Col
	case *capl.BinaryExpr:
		return x.Col
	case *capl.UnaryExpr:
		return x.Col
	case *capl.PostfixExpr:
		return x.Col
	case *capl.AssignExpr:
		return x.Col
	case *capl.CondExpr:
		return x.Col
	case *capl.CallExpr:
		return x.Col
	case *capl.MemberExpr:
		return x.Col
	case *capl.IndexExpr:
		return x.Col
	}
	return 0
}
