package ota

import (
	"strings"
	"testing"

	"repro/internal/fdr"
)

func TestTimerVariantBuilds(t *testing.T) {
	sys, err := BuildWithTimers()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"datatype Timers = updateCycle",
		"channel setTimer, cancelTimer, timeout : Timers",
		"VMG = setTimer.updateCycle -> VMG_RUN",
		"TIMER(t) = setTimer!t ->",
	} {
		if !strings.Contains(sys.Source, want) {
			t.Errorf("timer variant missing %q", want)
		}
	}
}

func TestTimerVariantChecks(t *testing.T) {
	sys, err := BuildWithTimers()
	if err != nil {
		t.Fatal(err)
	}
	results, err := fdr.RunAll(sys.Model, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range results {
		if !r.Result.Holds {
			t.Errorf("timer variant assertion failed: %s", r)
		}
	}
}

func TestTimerProcessEnforcesArmExpireAlternation(t *testing.T) {
	// The modelling reason for composing TIMER(t): with it, setTimer and
	// timeout strictly alternate; without it, the timeout event
	// free-runs and fires repeatedly after a single arming.
	sys, err := BuildWithTimers()
	if err != nil {
		t.Fatal(err)
	}
	alternation := `
TALT = setTimer.updateCycle -> timeout.updateCycle -> TALT
TVIEW = SYSTEMT \ {| send, rec |}
assert TALT [T= TVIEW
`
	withTimer, err := loadVariant(sys.Source + alternation)
	if err != nil {
		t.Fatal(err)
	}
	res, err := fdr.RunAssert(withTimer, withTimer.Asserts[numTimerAsserts], 0)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Holds {
		t.Errorf("with TIMER(t), arm/expire should alternate: %s", res.Counterexample)
	}

	freeRunning := strings.Replace(sys.Source+alternation,
		"VMGT = VMG [| {| setTimer, cancelTimer, timeout |} |] TIMER(updateCycle)",
		"VMGT = VMG", 1)
	noTimer, err := loadVariant(freeRunning)
	if err != nil {
		t.Fatal(err)
	}
	res, err = fdr.RunAssert(noTimer, noTimer.Asserts[numTimerAsserts], 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Holds {
		t.Error("free-running timer should violate arm/expire alternation")
	}
}

func TestFullX1373Builds(t *testing.T) {
	sys, err := BuildFullX1373()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"datatype SrvMsgs = diagnose | diagRpt | updateCheck | updateAvail | applyCmd | updateReport",
		"SERVER = toVMG!diagnose",
		"FULL = SERVER",
	} {
		if !strings.Contains(sys.Source, want) {
			t.Errorf("full model missing %q", want)
		}
	}
}

func TestFullX1373Checks(t *testing.T) {
	sys, err := BuildFullX1373()
	if err != nil {
		t.Fatal(err)
	}
	results, err := fdr.RunAll(sys.Model, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range results {
		if !r.Result.Holds {
			t.Errorf("full X.1373 assertion %d failed: %s", i, r)
		}
	}
}

func TestFullX1373FlawedECUBreaksEndToEnd(t *testing.T) {
	// Swap in the flawed ECU: the end-to-end update property must
	// break somewhere in the stack (the gateway never gets its rptSw).
	sys, err := BuildFullX1373()
	if err != nil {
		t.Fatal(err)
	}
	flawedModel := strings.Replace(sys.Source,
		"ECU = send.reqSw -> rec!rptSw -> ECU [] send.reqApp -> rec!rptUpd -> ECU",
		"ECU = send.reqSw -> rec!rptUpd -> ECU [] send.reqApp -> rec!rptUpd -> ECU", 1)
	if flawedModel == sys.Source {
		t.Fatal("flaw substitution did not apply; generated model changed?")
	}
	model, err := loadVariant(flawedModel)
	if err != nil {
		t.Fatal(err)
	}
	res, err := fdr.RunAssert(model, model.Asserts[FullAssertDeadlock], 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Holds {
		t.Error("flawed ECU should stall the full update stack")
	}
}
