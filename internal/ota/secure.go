package ota

import (
	"fmt"

	"repro/internal/attack"
	"repro/internal/csp"
	"repro/internal/security"
)

// SecureVariant selects how update-request messages are protected on
// the bus, following the X.1373 options discussed in section V-A2 of
// the paper (shared-key MAC) and the nonce extension of section V-B.
type SecureVariant int

// Secure model variants.
const (
	// Naive sends plaintext update requests: any bus attacker can forge
	// one and trigger an unauthorised update.
	Naive SecureVariant = iota + 1
	// MACOnly authenticates requests with a shared-key MAC: forging is
	// impossible, but a recorded request can be replayed.
	MACOnly
	// MACNonce adds a nonce to the MAC'd request and the ECU rejects
	// reused nonces, defeating replay as well.
	MACNonce
)

// String names the variant.
func (v SecureVariant) String() string {
	switch v {
	case Naive:
		return "plaintext"
	case MACOnly:
		return "shared-key MAC"
	case MACNonce:
		return "shared-key MAC + nonce"
	}
	return "unknown"
}

// SecureModel is the R05 shared-key model: a VMG broadcasting update
// requests on busV, an ECU accepting requests from both the genuine bus
// (busV) and the attacker-controlled direction (busI), and a Dolev-Yao
// intruder that overhears busV and injects on busI. Directional
// channels ensure every event has exactly one producer.
type SecureModel struct {
	Variant SecureVariant
	Ctx     *csp.Context
	Env     *csp.Env
	// System is the composition (VMG || ECU || INTRUDER) with the bus
	// hidden: only startUpd and applyUpd remain visible.
	System csp.Process
	// SystemVisible keeps the bus visible, for trace inspection.
	SystemVisible csp.Process
	// AuthSpec is non-injective authentication: no update is applied
	// before one was requested (violated by injection).
	AuthSpec csp.Process
	// InjSpec is injective agreement: requests and applications strictly
	// alternate (violated by replay).
	InjSpec csp.Process
	// IntruderStates reports the intruder's knowledge-state count.
	IntruderStates int
}

// Packet constructors of the secure model's bus datatype.
const (
	ctorPlain = "plain"
	ctorMAC   = "mac"
	ctorMACN  = "macn"
)

// plainPkt, macPkt and macnPkt build packet values.
func plainPkt(payload string) csp.Value { return csp.NewDotted(ctorPlain, csp.Sym(payload)) }
func macPkt(key, payload string) csp.Value {
	return csp.NewDotted(ctorMAC, csp.Sym(key), csp.Sym(payload))
}
func macnPkt(key, payload, nonce string) csp.Value {
	return csp.NewDotted(ctorMACN, csp.Sym(key), csp.Sym(payload), csp.Sym(nonce))
}

// BuildSecure assembles the shared-key model for the given variant.
func BuildSecure(variant SecureVariant) (m *SecureModel, err error) {
	defer csp.RecoverBuild(&err)
	ctx := csp.NewContext()
	env := csp.NewEnv()

	payload := csp.EnumType("Payload", "reqSw", "rptSw", "reqApp", "rptUpd")
	key := csp.EnumType("Key", "kShared", "kAtt")
	nonce := csp.EnumType("Nonce", "n1", "n2")
	packet := csp.DataType{
		TypeName: "Packet",
		Ctors: []csp.Ctor{
			{Head: ctorPlain, Fields: []csp.Type{payload}},
			{Head: ctorMAC, Fields: []csp.Type{key, payload}},
			{Head: ctorMACN, Fields: []csp.Type{key, payload, nonce}},
		},
	}
	for _, decl := range []struct {
		name string
		ty   csp.Type
	}{
		{"Payload", payload}, {"Key", key}, {"Nonce", nonce}, {"Packet", packet},
	} {
		if err := ctx.DeclareType(decl.name, decl.ty); err != nil {
			return nil, err
		}
	}
	// busV: frames produced by the VMG. busI: frames injected by the
	// intruder. busE: frames produced by the ECU (acknowledgements the
	// VMG paces on). The ECU treats busV and busI identically, as a real
	// CAN controller would (frames carry no provenance).
	for _, ch := range []string{"busV", "busI", "busE"} {
		if err := ctx.DeclareChannel(ch, packet); err != nil {
			return nil, err
		}
	}
	if err := ctx.DeclareChannel("startUpd"); err != nil {
		return nil, err
	}
	if err := ctx.DeclareChannel("applyUpd"); err != nil {
		return nil, err
	}

	switch variant {
	case Naive:
		defineNaiveNodes(env)
	case MACOnly:
		defineMACNodes(env)
	case MACNonce:
		defineMACNonceNodes(env)
	default:
		return nil, fmt.Errorf("unknown secure variant %d", variant)
	}

	// The bus attacker: replays relevant frames it overheard; forges
	// plaintext and anything protected by its own key.
	cfg := attack.BusConfig{
		Hear:     []string{"busV"},
		Say:      "busI",
		Universe: packet,
		Forgeable: func(v csp.Value, _ csp.SetValue) bool {
			d, ok := v.(csp.Dotted)
			if !ok {
				return false
			}
			switch d.Head {
			case ctorPlain:
				return true
			case ctorMAC, ctorMACN:
				return len(d.Args) > 0 && d.Args[0].Equal(csp.Sym("kAtt"))
			}
			return false
		},
		// Only packets the ECU acts on are worth remembering: MAC'd
		// update requests under the shared key. This keeps the
		// knowledge-state space at 2^3 instead of 2^12.
		Relevant: func(v csp.Value, _ csp.SetValue) bool {
			d, ok := v.(csp.Dotted)
			if !ok || len(d.Args) < 2 {
				return false
			}
			isShared := d.Args[0].Equal(csp.Sym("kShared"))
			isReqApp := d.Args[1].Equal(csp.Sym("reqApp"))
			return (d.Head == ctorMAC || d.Head == ctorMACN) && isShared && isReqApp
		},
	}
	intruder, err := attack.BuildIntruder(cfg, env)
	if err != nil {
		return nil, err
	}
	states, err := attack.NumKnowledgeStates(cfg)
	if err != nil {
		return nil, err
	}

	// VMG produces busV and consumes busE; the ECU consumes busV and
	// busI and produces busE; the intruder overhears busV and produces
	// busI.
	nodes := csp.Par(csp.Call("VMG"), csp.EventsOf("busV", "busE"), csp.Call("ECU"))
	visible := csp.Par(nodes, csp.EventsOf("busV", "busI"), intruder)
	system := csp.Hide(visible, csp.EventsOf("busV", "busI", "busE"))

	authSpec, err := security.Precedence(env, "AUTH", csp.Ev("startUpd"), csp.Ev("applyUpd"))
	if err != nil {
		return nil, err
	}
	injSpec, err := security.Alternation(env, "AUTHINJ", csp.Ev("startUpd"), csp.Ev("applyUpd"))
	if err != nil {
		return nil, err
	}

	return &SecureModel{
		Variant:        variant,
		Ctx:            ctx,
		Env:            env,
		System:         system,
		SystemVisible:  visible,
		AuthSpec:       authSpec,
		InjSpec:        injSpec,
		IntruderStates: states,
	}, nil
}

// defineECUReceiver installs ECU = busV?p -> handle [] busI?p -> handle.
func defineECUReceiver(env *csp.Env, name string, params []string, handle csp.Process) {
	env.MustDefine(name, params, csp.ExtChoice(
		csp.Recv("busV", handle, "p"),
		csp.Recv("busI", handle, "p"),
	))
}

// ackPkt is the acknowledgement frame the ECU broadcasts after applying
// an update; the VMG paces the next update cycle on it. Its authenticity
// is not under test here.
func ackPkt() csp.Value { return plainPkt("rptUpd") }

// ecuApply builds applyUpd -> busE!ack -> cont.
func ecuApply(cont csp.Process) csp.Process {
	return csp.DoEvent("applyUpd", csp.Send("busE", cont, ackPkt()))
}

// vmgCycle builds startUpd -> busV!req -> busE?r -> next.
func vmgCycle(req csp.Value, next csp.Process) csp.Process {
	return csp.DoEvent("startUpd",
		csp.Send("busV", csp.Recv("busE", next, "r"), req))
}

// defineNaiveNodes installs the plaintext protocol: the VMG announces
// the update (startUpd) then broadcasts plain.reqApp; the ECU applies
// on any plain.reqApp from either direction.
func defineNaiveNodes(env *csp.Env) {
	env.MustDefine("VMG", nil, vmgCycle(plainPkt("reqApp"), csp.Call("VMG")))
	defineECUReceiver(env, "ECU", nil, csp.If(
		csp.Binary{Op: csp.OpEq, L: csp.V("p"), R: csp.Lit{Val: plainPkt("reqApp")}},
		ecuApply(csp.Call("ECU")),
		csp.Call("ECU"),
	))
}

// defineMACNodes installs the shared-key MAC protocol.
func defineMACNodes(env *csp.Env) {
	pkt := macPkt("kShared", "reqApp")
	env.MustDefine("VMG", nil, vmgCycle(pkt, csp.Call("VMG")))
	defineECUReceiver(env, "ECU", nil, csp.If(
		csp.Binary{Op: csp.OpEq, L: csp.V("p"), R: csp.Lit{Val: pkt}},
		ecuApply(csp.Call("ECU")),
		csp.Call("ECU"),
	))
}

// defineMACNonceNodes installs the MAC+nonce protocol: the VMG uses each
// nonce once; the ECU tracks used nonces in a set parameter and rejects
// reuse.
func defineMACNonceNodes(env *csp.Env) {
	pktN1 := macnPkt("kShared", "reqApp", "n1")
	pktN2 := macnPkt("kShared", "reqApp", "n2")

	env.MustDefine("VMG", nil, vmgCycle(pktN1, csp.Call("VMG_2")))
	env.MustDefine("VMG_2", nil, vmgCycle(pktN2, csp.Call("VMG_DONE")))
	env.MustDefine("VMG_DONE", nil, csp.Stop())

	// ECU_P(used) applies an update for a fresh-nonce packet and records
	// the nonce; everything else is ignored.
	eq := func(v csp.Value) csp.Expr {
		return csp.Binary{Op: csp.OpEq, L: csp.V("p"), R: csp.Lit{Val: v}}
	}
	fresh := func(n string) csp.Expr {
		return csp.Unary{Op: csp.OpNot, X: csp.MemberExpr{
			Elem: csp.Lit{Val: csp.Sym(n)},
			Set:  csp.V("used"),
		}}
	}
	apply := func(n string) csp.Process {
		return ecuApply(csp.Call("ECU_P",
			csp.SetAddExpr{Base: csp.V("used"), Elem: csp.Lit{Val: csp.Sym(n)}}))
	}
	handle := csp.If(csp.Binary{Op: csp.OpAnd, L: eq(pktN1), R: fresh("n1")},
		apply("n1"),
		csp.If(csp.Binary{Op: csp.OpAnd, L: eq(pktN2), R: fresh("n2")},
			apply("n2"),
			csp.Call("ECU_P", csp.V("used")),
		))
	defineECUReceiver(env, "ECU_P", []string{"used"}, handle)
	env.MustDefine("ECU", nil, csp.Call("ECU_P", csp.Lit{Val: csp.NewSet()}))
}
