// Command gen writes the case-study CAPL sources and CAN database into
// testdata/, keeping the files in sync with the canonical sources in
// the ota package. Run from the repository root:
//
//	go run ./internal/ota/gen
package main

import (
	"fmt"
	"os"

	"repro/internal/ota"
)

func main() {
	files := map[string]string{
		"testdata/ecu.can":        ota.ECUSource,
		"testdata/vmg.can":        ota.VMGSource,
		"testdata/flawed_ecu.can": ota.FlawedECUSource,
		"testdata/vmg_timer.can":  ota.VMGTimerSource,
	}
	for path, content := range files {
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
}
