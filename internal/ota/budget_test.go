package ota

import (
	"errors"
	"testing"

	"repro/internal/fdr"
	"repro/internal/refine"
)

// TestBudgetedVerdictsMatchUnbudgeted runs every assertion of the base
// case-study script twice — once with the plain state bound and once
// under generous explicit budgets — and demands identical verdicts:
// budgets must only ever truncate, never distort.
func TestBudgetedVerdictsMatchUnbudgeted(t *testing.T) {
	sys, err := Build()
	if err != nil {
		t.Fatal(err)
	}
	bgt := fdr.Budget{
		MaxStates:        1 << 18,
		MaxProductStates: 1 << 18,
		MaxSteps:         1 << 22,
	}
	for i, a := range sys.Model.Asserts {
		want, err := fdr.RunAssert(sys.Model, a, 1<<18)
		if err != nil {
			t.Fatalf("assertion %d (%s): %v", i, a.Text, err)
		}
		got, err := fdr.RunAssertBudget(sys.Model, a, bgt)
		if err != nil {
			t.Fatalf("assertion %d (%s) budgeted: %v", i, a.Text, err)
		}
		if got.Holds != want.Holds {
			t.Errorf("assertion %d (%s): budgeted verdict %v != unbudgeted %v",
				i, a.Text, got.Holds, want.Holds)
		}
		if got.Counterexample.String() != want.Counterexample.String() {
			t.Errorf("assertion %d (%s): budgeted counterexample %v != unbudgeted %v",
				i, a.Text, got.Counterexample, want.Counterexample)
		}
	}
}

// TestTightBudgetDegradesGracefully exhausts a tiny product budget on a
// real case-study assertion: the caller gets a typed error with the
// partial exploration size instead of a hang or a bogus verdict.
func TestTightBudgetDegradesGracefully(t *testing.T) {
	sys, err := Build()
	if err != nil {
		t.Fatal(err)
	}
	_, err = fdr.RunAssertBudget(sys.Model, sys.Model.Asserts[AssertR02], fdr.Budget{
		MaxStates:        1 << 18,
		MaxProductStates: 2,
	})
	if err == nil {
		t.Fatal("expected a budget error with MaxProductStates=2")
	}
	var be *refine.BudgetError
	if !errors.As(err, &be) {
		t.Fatalf("error %v is not a *refine.BudgetError", err)
	}
	if be.Explored == 0 {
		t.Error("budget error should carry the partial exploration size")
	}
}
