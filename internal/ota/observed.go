package ota

import (
	"fmt"

	"repro/internal/capl"
	"repro/internal/cspm"
	"repro/internal/translate"
)

// This file builds the observed-bus conformance composition used by the
// soak harness (internal/conformance): the extracted node models placed
// behind an explicit bounded-fault channel, projected onto the events a
// bus monitor can actually see. A CANoe-style monitor records frames as
// they are *delivered*, so the comparable CSP trace is not over the
// synchronized send/rec of the paper's SYSTEM but over the delivered
// side of each direction: sendE (frames reaching the ECU) and rec
// (frames reaching the VMG). Transmissions the fault injector consumed
// or fabricated are absorbed by per-direction drop and spurious-delivery
// budgets derived from the faults that actually fired during the run.

// Observed-trace channel names: the events a bus monitor sees, and the
// direction each protocol identifier projects onto.
const (
	// ObservedToECU is the delivered VMG->ECU direction (reqSw, reqApp).
	ObservedToECU = "sendE"
	// ObservedToVMG is the delivered ECU->VMG direction (rptSw, rptUpd).
	ObservedToVMG = "rec"
)

// ObservedProcess is the name of the conformance process: the composed
// system with undelivered and internal events hidden, so its traces
// range exactly over the monitor-visible events.
const ObservedProcess = "OBSC"

// ChannelBudgets bounds the fault channel of the observed composition.
// All four budgets are per-run totals, not rates; the zero value is the
// exact (fault-free) channel, which relays every frame unmodified.
type ChannelBudgets struct {
	// DropToECU / DropToVMG allow the channel to destroy that many
	// accepted frames in the given direction (frame loss, or the loss
	// half of a delayed replay).
	DropToECU int `json:"dropToEcu"`
	DropToVMG int `json:"dropToVmg"`
	// SpurToECU / SpurToVMG allow that many spurious deliveries — frames
	// appearing on the delivered side without a matching send, covering
	// duplicates and the late half of delayed replays.
	SpurToECU int `json:"spurToEcu"`
	SpurToVMG int `json:"spurToVmg"`
}

// IsZero reports whether the channel is exact (no fault slack).
func (b ChannelBudgets) IsZero() bool {
	return b == ChannelBudgets{}
}

// ObservedConfig selects the reference sources and fault budgets of an
// observed-bus composition.
type ObservedConfig struct {
	// ECUSource and VMGSource are the CAPL programs the reference model
	// is extracted from.
	ECUSource string
	VMGSource string
	// WithTimers hides the timer events of the extracted models (needed
	// whenever a source uses CANoe timers — they are invisible on the
	// bus).
	WithTimers bool
	// ExtraTimers lists gateway timers the ECU-side declarations must
	// carry (see BuildLossy).
	ExtraTimers []string
	// Budgets bounds the fault channel.
	Budgets ChannelBudgets
}

// ObservedConfigFor returns the standard configuration for a gateway
// variant (reference model extracted from the variant's own sources).
func ObservedConfigFor(variant LossyVariant, b ChannelBudgets) ObservedConfig {
	cfg := ObservedConfig{
		ECUSource: ECUSource,
		VMGSource: VMGSource,
		Budgets:   b,
	}
	if variant == HardenedGateway {
		cfg.ECUSource = HardenedECUSource
		cfg.VMGSource = HardenedVMGSource
		cfg.WithTimers = true
		cfg.ExtraTimers = []string{"retryDiag", "retryUpd"}
	}
	return cfg
}

// observedSpecSection renders the bounded-fault channel and the
// conformance composition. Each direction is a two-deep FIFO with a
// per-run drop budget d and a spurious-delivery budget k: on accepting
// a frame it may internally discard it (consuming d), and at any point
// it may deliver an arbitrary message without a matching send
// (consuming k). With both budgets zero each direction degenerates to
// an exact order-preserving relay.
func observedSpecSection(b ChannelBudgets, withTimers bool) string {
	hidden := "{| send, recE |}"
	if withTimers {
		hidden = "{| send, recE, setTimer, cancelTimer, timeout |}"
	}
	return fmt.Sprintf(`
-- Observed-bus conformance composition (soak harness).
channel sendE, recE : Msgs
ECUC = ECU[[send <- sendE, rec <- recE]]

-- VMG -> ECU direction: accepts send, delivers sendE.
CQS0(d, k) = send?x -> CQSA(d, k, x)
           [] (if k > 0 then sendE?y -> CQS0(d, k - 1) else STOP)
CQSA(d, k, x) = if d > 0 then (CQS1(d, k, x) |~| CQS0(d - 1, k)) else CQS1(d, k, x)
CQS1(d, k, x) = sendE!x -> CQS0(d, k)
             [] send?y -> CQSB(d, k, x, y)
             [] (if k > 0 then sendE?z -> CQS1(d, k - 1, x) else STOP)
CQSB(d, k, x, y) = if d > 0 then ((CQS2(d, k, x, y) |~| CQS1(d - 1, k, x)) |~| CQS1(d - 1, k, y)) else CQS2(d, k, x, y)
CQS2(d, k, x, y) = sendE!x -> CQS1(d, k, y)
               [] sendE!y -> CQS1(d, k, x)
               [] (if k > 0 then sendE?z -> CQS2(d, k - 1, x, y) else STOP)

-- ECU -> VMG direction: accepts recE, delivers rec.
CQR0(d, k) = recE?x -> CQRA(d, k, x)
           [] (if k > 0 then rec?y -> CQR0(d, k - 1) else STOP)
CQRA(d, k, x) = if d > 0 then (CQR1(d, k, x) |~| CQR0(d - 1, k)) else CQR1(d, k, x)
CQR1(d, k, x) = rec!x -> CQR0(d, k)
             [] recE?y -> CQRB(d, k, x, y)
             [] (if k > 0 then rec?z -> CQR1(d, k - 1, x) else STOP)
CQRB(d, k, x, y) = if d > 0 then ((CQR2(d, k, x, y) |~| CQR1(d - 1, k, x)) |~| CQR1(d - 1, k, y)) else CQR2(d, k, x, y)
CQR2(d, k, x, y) = rec!x -> CQR1(d, k, y)
               [] rec!y -> CQR1(d, k, x)
               [] (if k > 0 then rec?z -> CQR2(d, k - 1, x, y) else STOP)

BUSC = CQS0(%d, %d) ||| CQR0(%d, %d)
SYSTEMC = (VMG [| {| send, rec |} |] BUSC) [| {| sendE, recE |} |] ECUC
OBSC = SYSTEMC \ %s
`, b.DropToECU, b.SpurToECU, b.DropToVMG, b.SpurToVMG, hidden)
}

// BuildObserved assembles the observed-bus conformance model: the
// Figure 1 extraction of both sources, composed behind the bounded
// fault channel, with the undelivered/internal events hidden. The
// resulting System's ObservedProcess has as its traces exactly the
// delivered-frame sequences the reference implementation could produce
// under at most the budgeted faults.
func BuildObserved(cfg ObservedConfig) (*System, error) {
	if cfg.Budgets.DropToECU < 0 || cfg.Budgets.SpurToECU < 0 ||
		cfg.Budgets.DropToVMG < 0 || cfg.Budgets.SpurToVMG < 0 {
		return nil, fmt.Errorf("ota: channel budgets must be >= 0, got %+v", cfg.Budgets)
	}
	ecuProg, err := capl.Parse(cfg.ECUSource)
	if err != nil {
		return nil, fmt.Errorf("parse ECU CAPL: %w", err)
	}
	vmgProg, err := capl.Parse(cfg.VMGSource)
	if err != nil {
		return nil, fmt.Errorf("parse VMG CAPL: %w", err)
	}

	ecuOpts := translate.Options{
		NodeName:      "ECU",
		InChannel:     "send",
		OutChannel:    "rec",
		MsgDatatype:   "Msgs",
		MessageRename: MessageRename,
		ExtraMessages: allMessages,
		ExtraTimers:   cfg.ExtraTimers,
		IncludeTimers: true,
	}
	ecuRes, err := translate.Translate(ecuProg, ecuOpts)
	if err != nil {
		return nil, fmt.Errorf("extract ECU model: %w", err)
	}
	vmgOpts := translate.Options{
		NodeName:      "VMG",
		InChannel:     "rec",
		OutChannel:    "send",
		MsgDatatype:   "Msgs",
		MessageRename: MessageRename,
		ExtraMessages: allMessages,
		IncludeTimers: true,
		OmitDecls:     true,
	}
	vmgRes, err := translate.Translate(vmgProg, vmgOpts)
	if err != nil {
		return nil, fmt.Errorf("extract VMG model: %w", err)
	}

	combined := ecuRes.Text + "\n" + vmgRes.Text + observedSpecSection(cfg.Budgets, cfg.WithTimers)
	model, err := cspm.Load(combined)
	if err != nil {
		return nil, fmt.Errorf("evaluate observed model: %w\n%s", err, combined)
	}
	sys := &System{
		Model:   model,
		Source:  combined,
		ECUText: ecuRes.Text,
		VMGText: vmgRes.Text,
	}
	sys.Warnings = append(sys.Warnings, ecuRes.Warnings...)
	sys.Warnings = append(sys.Warnings, vmgRes.Warnings...)
	return sys, nil
}
