package ota

import (
	"strings"
	"testing"
)

const lossyMaxStates = 1 << 18

func TestBuildLossyHardened(t *testing.T) {
	sys, err := BuildLossy(HardenedGateway, DefaultLossBudget)
	if err != nil {
		t.Fatalf("BuildLossy(hardened): %v", err)
	}
	if got := len(sys.Model.Asserts); got != numLossyAsserts {
		t.Fatalf("got %d assertions, want %d", got, numLossyAsserts)
	}
	// The retransmission variant keeps every property: the delivered
	// interface stays live despite the loss budget.
	for i := 0; i < numLossyAsserts; i++ {
		res, err := CheckAssertion(sys, i, lossyMaxStates)
		if err != nil {
			t.Fatalf("assertion %d (%s): %v", i, sys.Model.Asserts[i].Text, err)
		}
		if !res.Holds {
			t.Errorf("assertion %d (%s) = FAIL, want PASS; counterexample %v",
				i, sys.Model.Asserts[i].Text, res.Counterexample)
		}
	}
}

func TestBuildLossyNaiveFailsWithoutRetries(t *testing.T) {
	sys, err := BuildLossy(NaiveGateway, DefaultLossBudget)
	if err != nil {
		t.Fatalf("BuildLossy(naive): %v", err)
	}
	want := map[int]bool{
		// The trace checks are vacuously satisfied: a protocol stalled by
		// a lost frame still has only correct prefixes. This is exactly
		// why the robustness claim needs the failures model.
		LossyAssertSP02T:  true,
		LossyAssertSP034T: true,
		// Without retransmission a single lost frame refuses all further
		// progress at the delivered interface.
		LossyAssertSP02F:  false,
		LossyAssertSP034F: false,
		// ... and the whole composition can deadlock.
		LossyAssertDeadlock:   false,
		LossyAssertDivergence: true,
	}
	for i := 0; i < numLossyAsserts; i++ {
		res, err := CheckAssertion(sys, i, lossyMaxStates)
		if err != nil {
			t.Fatalf("assertion %d (%s): %v", i, sys.Model.Asserts[i].Text, err)
		}
		if res.Holds != want[i] {
			t.Errorf("assertion %d (%s): holds=%v, want %v (counterexample %v)",
				i, sys.Model.Asserts[i].Text, res.Holds, want[i], res.Counterexample)
		}
	}
}

func TestBuildLossyZeroBudgetMatchesLossless(t *testing.T) {
	// With a zero loss budget even the naive gateway satisfies the
	// failures checks: the channel degenerates to a reliable buffer.
	sys, err := BuildLossy(NaiveGateway, 0)
	if err != nil {
		t.Fatalf("BuildLossy(naive, 0): %v", err)
	}
	for _, i := range []int{LossyAssertSP02F, LossyAssertSP034F, LossyAssertDeadlock} {
		res, err := CheckAssertion(sys, i, lossyMaxStates)
		if err != nil {
			t.Fatalf("assertion %d: %v", i, err)
		}
		if !res.Holds {
			t.Errorf("assertion %d (%s) = FAIL with zero loss budget, want PASS; counterexample %v",
				i, sys.Model.Asserts[i].Text, res.Counterexample)
		}
	}
}

func TestBuildLossyRejectsNegativeBudget(t *testing.T) {
	if _, err := BuildLossy(HardenedGateway, -1); err == nil {
		t.Fatal("expected error for negative loss budget")
	}
}

func TestHardenedTranslationShape(t *testing.T) {
	sys, err := BuildLossy(HardenedGateway, DefaultLossBudget)
	if err != nil {
		t.Fatalf("BuildLossy(hardened): %v", err)
	}
	// The bounded-retry `if` around setTimer re-arms is the only
	// data-dependent branch that survives abstraction; it must show up as
	// internal choice plus a translator warning per retry handler.
	for _, wantSub := range []string{"timeout.retryDiag", "timeout.retryUpd", "|~|"} {
		if !strings.Contains(sys.VMGText, wantSub) {
			t.Errorf("VMG model missing %q:\n%s", wantSub, sys.VMGText)
		}
	}
	if len(sys.Warnings) == 0 {
		t.Error("expected abstraction warnings for the bounded-retry branches")
	}
	// The ECU's duplicate-suppression branch guards only internal state,
	// so both arms collapse and its model keeps the simple
	// request/response shape of the paper's Figure 3.
	if strings.Contains(sys.ECUText, "|~|") {
		t.Errorf("ECU model should not contain internal choice:\n%s", sys.ECUText)
	}
}
