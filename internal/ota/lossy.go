package ota

import (
	"fmt"

	"repro/internal/capl"
	"repro/internal/cspm"
	"repro/internal/translate"
)

// This file hardens the case study against the faults the paper's
// channel model abstracts away: frame loss, duplication and delay. It
// carries a retransmission variant of the VMG and ECU CAPL programs
// (ack-timeout, bounded retry with backoff, duplicate suppression via a
// sequence bit), extracts both through the Figure 1 translator
// pipeline, and composes them with an explicit bounded-loss channel so
// the refinement checker can show that SP02/SP034 survive message loss
// with retries and demonstrably fail without them — the
// Hagen-et-al-style lossy-channel verification the ROADMAP points at.

// HardenedECUSource is the retry-tolerant target ECU: inventory
// requests are idempotent, and apply-update requests carry a sequence
// bit in payload byte 0 so retransmitted requests are acknowledged
// again without applying the update twice.
const HardenedECUSource = `/*@!Encoding:1310*/
/* Target ECU update module, retransmission-hardened. */

variables
{
  message 0x101 swInventoryReq;   // reqSw:  VMG -> ECU
  message 0x102 swInventoryRpt;   // rptSw:  ECU -> VMG
  message 0x103 applyUpdateReq;   // reqApp: VMG -> ECU (byte 0: seq bit)
  message 0x104 updateResultRpt;  // rptUpd: ECU -> VMG (byte 0: seq echo)
  int lastSeq = -1;
  int updatesApplied = 0;
}

on message swInventoryReq
{
  // Inventory reports are idempotent: re-answer every (re)request.
  output(swInventoryRpt);
}

on message applyUpdateReq
{
  // Duplicate suppression: only a fresh sequence bit applies the
  // update; a retransmitted request is acknowledged again.
  if (this.byte(0) != lastSeq) {
    lastSeq = this.byte(0);
    applyUpdate();
  }
  updateResultRpt.byte(0) = this.byte(0);
  output(updateResultRpt);
}

void applyUpdate()
{
  updatesApplied = updatesApplied + 1;
}
`

// HardenedVMGSource is the retransmission-hardened gateway: every
// request arms an ack timer, unanswered requests are retransmitted with
// a linear backoff up to a bounded number of attempts, and apply-update
// requests carry an alternating sequence bit for duplicate suppression
// at the ECU.
const HardenedVMGSource = `/*@!Encoding:1310*/
/* Vehicle Mobile Gateway (VMG), retransmission-hardened. */

variables
{
  message 0x101 swInventoryReq;
  message 0x102 swInventoryRpt;
  message 0x103 applyUpdateReq;
  message 0x104 updateResultRpt;
  msTimer retryDiag;
  msTimer retryUpd;
  int seqBit = 0;
  int diagTries = 0;
  int updTries = 0;
  int cycles = 0;
  int gaveUp = 0;
}

on start
{
  output(swInventoryReq);
  setTimer(retryDiag, 50);
}

on message swInventoryRpt
{
  cancelTimer(retryDiag);
  diagTries = 0;
  applyUpdateReq.byte(0) = seqBit;
  output(applyUpdateReq);
  setTimer(retryUpd, 50);
}

on message updateResultRpt
{
  cancelTimer(retryUpd);
  updTries = 0;
  seqBit = 1 - seqBit;
  cycles = cycles + 1;
  output(swInventoryReq);
  setTimer(retryDiag, 50);
}

on timer retryDiag
{
  diagTries = diagTries + 1;
  output(swInventoryReq);
  if (diagTries < 8) {
    setTimer(retryDiag, 50 + 50 * diagTries);  // linear backoff
  }
  if (diagTries >= 8) {
    gaveUp = 1;  // bounded retry: give up, leave recovery to operator
  }
}

on timer retryUpd
{
  updTries = updTries + 1;
  applyUpdateReq.byte(0) = seqBit;
  output(applyUpdateReq);
  if (updTries < 8) {
    setTimer(retryUpd, 50 + 50 * updTries);
  }
  if (updTries >= 8) {
    gaveUp = 1;
  }
}
`

// LossyVariant selects the gateway composed with the lossy channel.
type LossyVariant int

// Lossy composition variants.
const (
	// NaiveGateway is the paper's original VMG: it sends each request
	// exactly once, so any lost frame stalls the protocol.
	NaiveGateway LossyVariant = iota
	// HardenedGateway is the retransmission variant above.
	HardenedGateway
)

// String names the variant.
func (v LossyVariant) String() string {
	if v == HardenedGateway {
		return "hardened (retry) gateway"
	}
	return "naive gateway"
}

// Assertion indices of the lossy-channel scripts. The [T= pair
// documents that the finite-trace model the paper uses cannot see
// message loss (a stalled protocol has only correct prefixes); the [F=
// pair is the decisive robustness check — the delivered interface must
// keep making progress, which requires retransmission.
const (
	LossyAssertSP02T = iota
	LossyAssertSP034T
	LossyAssertSP02F
	LossyAssertSP034F
	LossyAssertDeadlock
	LossyAssertDivergence
	numLossyAsserts
)

// DefaultLossBudget is the per-direction loss budget of the standard
// lossy composition: the channel may destroy at most this many frames
// in each direction, the classic bounded-loss abstraction of a fair
// channel (retry bounds must exceed it for convergence).
const DefaultLossBudget = 2

// lossySpecSection builds the lossy-channel composition and its
// assertions. Each direction of the channel is a single-slot CAN
// controller mailbox: it always accepts the newest frame (overwrite),
// may drop at most `budget` frames, and otherwise delivers. The ECU is
// renamed onto delivered channels sendE/recE so the specification can
// observe what the far side actually received.
func lossySpecSection(budget int, withTimers bool) string {
	hidden := "{| send, rec |}"
	if withTimers {
		hidden = "{| send, rec, setTimer, cancelTimer, timeout |}"
	}
	return fmt.Sprintf(`
-- Bounded-loss channel composition (robustness checking).
channel sendE, recE : Msgs
ECUL = ECU[[send <- sendE, rec <- recE]]

CHS(n) = send?x -> CHSF(n, x)
CHSF(n, x) = if n > 0 then (CHSD(n, x) |~| CHS(n - 1)) else CHSD(n, x)
CHSD(n, x) = send?y -> CHSF(n, y) [] sendE!x -> CHS(n)

CHR(n) = recE?x -> CHRF(n, x)
CHRF(n, x) = if n > 0 then (CHRD(n, x) |~| CHR(n - 1)) else CHRD(n, x)
CHRD(n, x) = recE?y -> CHRF(n, y) [] rec!x -> CHR(n)

LOSSY = CHS(%d) ||| CHR(%d)
SYSTEML = (VMG [| {| send, rec |} |] LOSSY) [| {| sendE, recE |} |] ECUL

-- Delivered-interface views: the protocol as the far side received it.
DELIVL = SYSTEML \ %s
DIAGL = DELIVL \ {sendE.reqApp, recE.rptUpd}
UPDL = DELIVL \ {sendE.reqSw, recE.rptSw}

SP02L = sendE.reqSw -> recE.rptSw -> SP02L
SP034L = sendE.reqApp -> recE.rptUpd -> SP034L

assert SP02L [T= DIAGL
assert SP034L [T= UPDL
assert SP02L [F= DIAGL
assert SP034L [F= UPDL
assert SYSTEML :[deadlock free]
assert SYSTEML :[divergence free]
`, budget, budget, hidden)
}

// BuildLossy assembles the lossy-channel robustness composition for the
// chosen gateway variant with a per-direction loss budget. With the
// hardened gateway every assertion holds; with the naive gateway the
// stable-failures checks and deadlock freedom fail — the counterexample
// is the lost frame the paper's fault-free channel could never exhibit.
func BuildLossy(variant LossyVariant, lossBudget int) (*System, error) {
	if lossBudget < 0 {
		return nil, fmt.Errorf("ota: loss budget must be >= 0, got %d", lossBudget)
	}
	ecuSrc, vmgSrc := ECUSource, VMGSource
	withTimers := false
	var extraTimers []string
	if variant == HardenedGateway {
		ecuSrc, vmgSrc = HardenedECUSource, HardenedVMGSource
		withTimers = true
		// The ECU translation carries the shared declarations, so it
		// must declare the gateway's retry timers.
		extraTimers = []string{"retryDiag", "retryUpd"}
	}

	ecuProg, err := capl.Parse(ecuSrc)
	if err != nil {
		return nil, fmt.Errorf("parse ECU CAPL: %w", err)
	}
	vmgProg, err := capl.Parse(vmgSrc)
	if err != nil {
		return nil, fmt.Errorf("parse VMG CAPL: %w", err)
	}

	ecuOpts := translate.Options{
		NodeName:      "ECU",
		InChannel:     "send",
		OutChannel:    "rec",
		MsgDatatype:   "Msgs",
		MessageRename: MessageRename,
		ExtraMessages: allMessages,
		ExtraTimers:   extraTimers,
		IncludeTimers: true,
	}
	ecuRes, err := translate.Translate(ecuProg, ecuOpts)
	if err != nil {
		return nil, fmt.Errorf("extract ECU model: %w", err)
	}
	vmgOpts := translate.Options{
		NodeName:      "VMG",
		InChannel:     "rec",
		OutChannel:    "send",
		MsgDatatype:   "Msgs",
		MessageRename: MessageRename,
		ExtraMessages: allMessages,
		IncludeTimers: true,
		OmitDecls:     true,
	}
	vmgRes, err := translate.Translate(vmgProg, vmgOpts)
	if err != nil {
		return nil, fmt.Errorf("extract VMG model: %w", err)
	}

	combined := ecuRes.Text + "\n" + vmgRes.Text + lossySpecSection(lossBudget, withTimers)
	model, err := cspm.Load(combined)
	if err != nil {
		return nil, fmt.Errorf("evaluate lossy model (%s): %w\n%s", variant, err, combined)
	}
	if len(model.Asserts) != numLossyAsserts {
		return nil, fmt.Errorf("lossy model has %d assertions, want %d", len(model.Asserts), numLossyAsserts)
	}
	sys := &System{
		Model:   model,
		Source:  combined,
		ECUText: ecuRes.Text,
		VMGText: vmgRes.Text,
	}
	sys.Warnings = append(sys.Warnings, ecuRes.Warnings...)
	sys.Warnings = append(sys.Warnings, vmgRes.Warnings...)
	return sys, nil
}
