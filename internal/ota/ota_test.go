package ota

import (
	"strings"
	"testing"

	"repro/internal/fdr"
	"repro/internal/refine"
)

func TestBuildCorrectSystem(t *testing.T) {
	sys, err := Build()
	if err != nil {
		t.Fatal(err)
	}
	if len(sys.Warnings) != 0 {
		t.Errorf("unexpected translator warnings: %v", sys.Warnings)
	}
	// The Figure 3 artefact: the generated ECU model.
	for _, want := range []string{
		"datatype Msgs = reqSw | rptSw | reqApp | rptUpd",
		"channel send, rec : Msgs",
		"send.reqSw -> rec!rptSw -> ECU",
	} {
		if !strings.Contains(sys.ECUText, want) {
			t.Errorf("ECU model missing %q:\n%s", want, sys.ECUText)
		}
	}
}

func TestRequirementsHoldOnCorrectSystem(t *testing.T) {
	sys, err := Build()
	if err != nil {
		t.Fatal(err)
	}
	results, err := CheckRequirements(sys, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(TableIII) {
		t.Fatalf("results = %d, want %d", len(results), len(TableIII))
	}
	for _, r := range results {
		if !r.Holds {
			t.Errorf("%s failed: %s %s", r.Req.ID, r.Result.Counterexample, r.Result.Reason)
		}
	}
}

func TestAllAssertionsPassOnCorrectSystem(t *testing.T) {
	sys, err := Build()
	if err != nil {
		t.Fatal(err)
	}
	results, err := fdr.RunAll(sys.Model, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range results {
		if !r.Result.Holds {
			t.Errorf("assertion failed: %s", r)
		}
	}
}

func TestFlawedECUViolatesR02(t *testing.T) {
	sys, err := BuildFlawed()
	if err != nil {
		t.Fatal(err)
	}
	res, err := CheckAssertion(sys, AssertR02, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Holds {
		t.Fatal("flawed ECU must violate SP02")
	}
	// The shortest counterexample: a second reqSw with no rptSw between
	// (the rptUpd the flawed ECU sends is hidden in the DIAG view).
	got := res.Counterexample.String()
	if !strings.Contains(got, "send.reqSw") {
		t.Errorf("counterexample = %s, want it to exhibit the unanswered request", got)
	}
	// R01 still holds: the VMG side is untouched.
	res01, err := CheckAssertion(sys, AssertR01, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !res01.Holds {
		t.Errorf("R01 should still hold on the flawed system: %s", res01.Counterexample)
	}
}

func TestDeadlockedECUCaught(t *testing.T) {
	sys, err := BuildDeadlocked()
	if err != nil {
		t.Fatal(err)
	}
	res, err := CheckAssertion(sys, AssertDeadlock, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Holds {
		t.Fatal("request-swallowing ECU must deadlock the system")
	}
	// Deadlock occurs after the first (unanswered) inventory request.
	if len(res.Counterexample) != 1 || !strings.Contains(res.Counterexample.String(), "send.reqSw") {
		t.Errorf("deadlock trace = %s, want <send.reqSw>", res.Counterexample)
	}
}

func TestTableIIContents(t *testing.T) {
	if len(TableII) != 4 {
		t.Fatalf("Table II rows = %d, want 4", len(TableII))
	}
	ids := map[string]bool{}
	for _, row := range TableII {
		ids[row.ID] = true
		if row.From == row.To {
			t.Errorf("row %s: From == To", row.ID)
		}
	}
	for _, want := range []string{"reqSw", "rptSw", "reqApp", "rptUpd"} {
		if !ids[want] {
			t.Errorf("Table II missing %s", want)
		}
	}
}

func TestSecureNaiveInjectionAttack(t *testing.T) {
	m, err := BuildSecure(Naive)
	if err != nil {
		t.Fatal(err)
	}
	c := refine.NewChecker(m.Env, m.Ctx)
	res, err := c.RefinesTraces(m.AuthSpec, m.System)
	if err != nil {
		t.Fatal(err)
	}
	if res.Holds {
		t.Fatal("plaintext protocol must be vulnerable to injection")
	}
	// The classic attack: an update is applied with no request ever made.
	if res.Counterexample.String() != "<applyUpd>" {
		t.Errorf("attack trace = %s, want <applyUpd>", res.Counterexample)
	}
}

func TestSecureMACStopsInjection(t *testing.T) {
	m, err := BuildSecure(MACOnly)
	if err != nil {
		t.Fatal(err)
	}
	c := refine.NewChecker(m.Env, m.Ctx)
	res, err := c.RefinesTraces(m.AuthSpec, m.System)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Holds {
		t.Errorf("MAC protocol wrongly vulnerable to injection: %s", res.Counterexample)
	}
}

func TestSecureMACReplayAttack(t *testing.T) {
	m, err := BuildSecure(MACOnly)
	if err != nil {
		t.Fatal(err)
	}
	c := refine.NewChecker(m.Env, m.Ctx)
	res, err := c.RefinesTraces(m.InjSpec, m.System)
	if err != nil {
		t.Fatal(err)
	}
	if res.Holds {
		t.Fatal("MAC-only protocol must be vulnerable to replay")
	}
	// Replay: one startUpd, two applyUpd.
	got := res.Counterexample.String()
	if !strings.Contains(got, "applyUpd, applyUpd") {
		t.Errorf("replay trace = %s, want double applyUpd", got)
	}
}

func TestSecureNonceStopsReplay(t *testing.T) {
	m, err := BuildSecure(MACNonce)
	if err != nil {
		t.Fatal(err)
	}
	c := refine.NewChecker(m.Env, m.Ctx)
	res, err := c.RefinesTraces(m.InjSpec, m.System)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Holds {
		t.Errorf("nonce protocol wrongly vulnerable to replay: %s (%s)",
			res.Counterexample, res.Reason)
	}
	// And injection stays impossible.
	resAuth, err := c.RefinesTraces(m.AuthSpec, m.System)
	if err != nil {
		t.Fatal(err)
	}
	if !resAuth.Holds {
		t.Errorf("nonce protocol wrongly vulnerable to injection: %s", resAuth.Counterexample)
	}
}

func TestSecureVariantStrings(t *testing.T) {
	for v, want := range map[SecureVariant]string{
		Naive:    "plaintext",
		MACOnly:  "shared-key MAC",
		MACNonce: "shared-key MAC + nonce",
	} {
		if v.String() != want {
			t.Errorf("variant %d = %q, want %q", v, v.String(), want)
		}
	}
}

func TestIntruderStateCountReported(t *testing.T) {
	m, err := BuildSecure(MACNonce)
	if err != nil {
		t.Fatal(err)
	}
	// Relevant packets: mac.kShared.reqApp, macn.kShared.reqApp.{n1,n2}
	// -> at most 2^3 knowledge states.
	if m.IntruderStates < 2 || m.IntruderStates > 8 {
		t.Errorf("intruder states = %d, want within [2,8]", m.IntruderStates)
	}
}
