package ota

import (
	"fmt"

	"repro/internal/fdr"
	"repro/internal/lts"
	"repro/internal/refine"
)

// ReqKind distinguishes requirements that are checked by refinement
// from those modelled as assumptions.
type ReqKind int

// Requirement kinds.
const (
	// Checked requirements map to an assertion in the combined script.
	Checked ReqKind = iota + 1
	// Assumption requirements are architectural assumptions; R05 (shared
	// keys) is validated separately by the intruder experiments on the
	// secure model.
	Assumption
)

// Requirement is one row of Table III.
type Requirement struct {
	ID   string
	Text string
	Kind ReqKind
	// AssertIndex is the index of the assertion in the combined script
	// that checks this requirement (Checked kind only).
	AssertIndex int
	// Property names the specification process used.
	Property string
}

// TableIII lists the secure update system requirements of the paper's
// Table III and how each is verified.
var TableIII = []Requirement{
	{
		ID:          "R01",
		Text:        "At start of update process, the VMG shall send a software inventory request message to all ECUs.",
		Kind:        Checked,
		AssertIndex: AssertR01,
		Property:    "SP01",
	},
	{
		ID:          "R02",
		Text:        "On receipt of software inventory request, the ECU shall send a software list response message.",
		Kind:        Checked,
		AssertIndex: AssertR02,
		Property:    "SP02",
	},
	{
		ID:          "R03",
		Text:        "On receipt of apply update message from the VMG, the ECU shall check the package contents and apply the update.",
		Kind:        Checked,
		AssertIndex: AssertR034,
		Property:    "SP034",
	},
	{
		ID:          "R04",
		Text:        "On completion of update module installation, the ECU shall send software update result message to the VMG.",
		Kind:        Checked,
		AssertIndex: AssertR034,
		Property:    "SP034",
	},
	{
		ID:       "R05",
		Text:     "It is assumed the system uses shared keys.",
		Kind:     Assumption,
		Property: "MACINTEGRITY (secure model + Dolev-Yao intruder)",
	},
}

// ReqResult is the verification outcome for one requirement.
type ReqResult struct {
	Req    Requirement
	Holds  bool
	Result refine.Result
	Detail string
}

// CheckRequirements verifies every Table III requirement against the
// given system. Assumption-kind requirements are reported as holding
// with an explanatory detail; their real check lives in the secure-model
// experiments.
func CheckRequirements(sys *System, maxStates int) ([]ReqResult, error) {
	// One cache for the whole table: R02/R03/R04 all check the same
	// SYSTEM term, which is therefore explored once.
	bgt := fdr.Budget{MaxStates: maxStates, Cache: lts.NewCache()}
	out := make([]ReqResult, 0, len(TableIII))
	for _, req := range TableIII {
		if req.Kind == Assumption {
			out = append(out, ReqResult{
				Req:    req,
				Holds:  true,
				Detail: "architectural assumption; verified by the shared-key intruder experiment",
			})
			continue
		}
		res, err := fdr.RunAssertBudget(sys.Model, sys.Model.Asserts[req.AssertIndex], bgt)
		if err != nil {
			return nil, fmt.Errorf("requirement %s: %w", req.ID, err)
		}
		detail := "refinement " + sys.Model.Asserts[req.AssertIndex].Text
		out = append(out, ReqResult{Req: req, Holds: res.Holds, Result: res, Detail: detail})
	}
	return out, nil
}

// CheckAssertion runs one of the combined script's assertions by index.
func CheckAssertion(sys *System, index, maxStates int) (refine.Result, error) {
	return CheckAssertionBudget(sys, index, fdr.Budget{MaxStates: maxStates})
}

// CheckAssertionBudget runs one assertion by index under explicit
// checker budgets. Campaign callers should thread one fdr.Budget.Cache
// through every call for a system, so the shared spec and impl LTSs are
// explored once rather than once per assertion.
func CheckAssertionBudget(sys *System, index int, bgt fdr.Budget) (refine.Result, error) {
	if index < 0 || index >= len(sys.Model.Asserts) {
		return refine.Result{}, fmt.Errorf("assertion index %d out of range", index)
	}
	return fdr.RunAssertBudget(sys.Model, sys.Model.Asserts[index], bgt)
}
