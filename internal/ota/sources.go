// Package ota implements the paper's case study (section V): Over-The-
// Air software updates following ITU-T X.1373, restricted — like the
// paper's demonstration — to the Vehicle Mobile Gateway (VMG) and a
// target ECU (Figure 2). It carries the CAPL sources of the simulated
// CANoe network nodes, the end-to-end extraction pipeline (Figure 1),
// the Table III requirements encoded as CSP specification processes, and
// the shared-key (MAC) secure variant used for requirement R05.
package ota

// MessageRename maps the CAPL message variable names used in the CANoe
// node programs to the X.1373 message-type identifiers of Table II.
var MessageRename = map[string]string{
	"swInventoryReq":  "reqSw",
	"swInventoryRpt":  "rptSw",
	"applyUpdateReq":  "reqApp",
	"updateResultRpt": "rptUpd",
}

// MessageType is one row of Table II: the X.1373 message types used by
// the demonstration system.
type MessageType struct {
	Type        string // Diagnose or Update
	ID          string // reqSw, rptSw, reqApp, rptUpd
	From, To    string
	Description string
	CANID       int64 // CAN identifier in the simulated network
}

// TableII lists the message types of the case study exactly as in the
// paper's Table II, extended with the CAN identifiers our simulated
// network assigns them.
var TableII = []MessageType{
	{Type: "Diagnose", ID: "reqSw", From: "VMG", To: "ECU", Description: "Request diagnose software status", CANID: 0x101},
	{Type: "Diagnose", ID: "rptSw", From: "ECU", To: "VMG", Description: "Result of software diagnosis", CANID: 0x102},
	{Type: "Update", ID: "reqApp", From: "VMG", To: "ECU", Description: "Request apply update module", CANID: 0x103},
	{Type: "Update", ID: "rptUpd", From: "ECU", To: "VMG", Description: "Result of applying update module", CANID: 0x104},
}

// ECUSource is the CAPL program of the target ECU's update module: it
// answers software inventory requests (R02) and applies updates,
// reporting the result (R03, R04).
const ECUSource = `/*@!Encoding:1310*/
/* Target ECU update module (ITU-T X.1373 demonstration subset). */

variables
{
  message 0x101 swInventoryReq;   // reqSw:  VMG -> ECU
  message 0x102 swInventoryRpt;   // rptSw:  ECU -> VMG
  message 0x103 applyUpdateReq;   // reqApp: VMG -> ECU
  message 0x104 updateResultRpt;  // rptUpd: ECU -> VMG
  int updatesApplied = 0;
}

on message swInventoryReq
{
  // R02: every inventory request is answered with a software list.
  output(swInventoryRpt);
}

on message applyUpdateReq
{
  // R03: check the package contents and apply the update.
  applyUpdate();
  // R04: report the installation result.
  output(updateResultRpt);
}

void applyUpdate()
{
  updatesApplied = updatesApplied + 1;
}
`

// VMGSource is the CAPL program of the Vehicle Mobile Gateway: it starts
// the update process with an inventory request (R01) and drives the
// update exchange.
const VMGSource = `/*@!Encoding:1310*/
/* Vehicle Mobile Gateway (VMG) update manager. */

variables
{
  message 0x101 swInventoryReq;
  message 0x102 swInventoryRpt;
  message 0x103 applyUpdateReq;
  message 0x104 updateResultRpt;
}

on start
{
  // R01: at start of the update process, request the software inventory.
  output(swInventoryReq);
}

on message swInventoryRpt
{
  output(applyUpdateReq);
}

on message updateResultRpt
{
  // Begin the next update cycle.
  output(swInventoryReq);
}
`

// FlawedECUSource is a deliberately broken ECU implementation: it
// responds to an inventory request with an update result instead of the
// software list, violating the integrity requirement R02 (the flaw class
// the paper's SP_02 check is designed to expose).
const FlawedECUSource = `/*@!Encoding:1310*/
variables
{
  message 0x101 swInventoryReq;
  message 0x102 swInventoryRpt;
  message 0x103 applyUpdateReq;
  message 0x104 updateResultRpt;
}

on message swInventoryReq
{
  output(updateResultRpt);  // BUG: wrong response message
}

on message applyUpdateReq
{
  output(updateResultRpt);
}
`

// DeadlockECUSource is an ECU that never answers the inventory request,
// so the composed system deadlocks after the first message — used to
// exercise the deadlock-freedom assertion.
const DeadlockECUSource = `/*@!Encoding:1310*/
variables
{
  message 0x101 swInventoryReq;
  message 0x102 swInventoryRpt;
  message 0x103 applyUpdateReq;
  message 0x104 updateResultRpt;
  int seen = 0;
}

on message swInventoryReq
{
  seen = seen + 1;  // silently swallow the request
}
`

// VMGTimerSource is a richer VMG variant that drives the update cycle
// from a CANoe timer, exercising the untimed timer abstraction
// (setTimer/timeout events) of the translator.
const VMGTimerSource = `/*@!Encoding:1310*/
variables
{
  message 0x101 swInventoryReq;
  message 0x102 swInventoryRpt;
  message 0x103 applyUpdateReq;
  message 0x104 updateResultRpt;
  msTimer updateCycle;
}

on start
{
  setTimer(updateCycle, 100);
}

on timer updateCycle
{
  output(swInventoryReq);
}

on message swInventoryRpt
{
  output(applyUpdateReq);
}

on message updateResultRpt
{
  setTimer(updateCycle, 1000);
}
`
