package ota

import (
	"testing"

	"repro/internal/csp"
	"repro/internal/refine"
)

func obsEv(ch, msg string) csp.Event {
	return csp.Event{Chan: ch, Args: []csp.Value{csp.Sym(msg)}}
}

func acceptsObserved(t *testing.T, cfg ObservedConfig, tr csp.Trace) refine.TraceCheck {
	t.Helper()
	sys, err := BuildObserved(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c := refine.NewChecker(sys.Model.Env, sys.Model.Ctx)
	res, err := c.AcceptsTrace(csp.Call(ObservedProcess), tr)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestObservedExactChannelRelays: with zero budgets the composition
// degenerates to the paper's synchronized system, seen from the
// delivered side.
func TestObservedExactChannelRelays(t *testing.T) {
	cfg := ObservedConfigFor(NaiveGateway, ChannelBudgets{})
	good := csp.Trace{
		obsEv(ObservedToECU, "reqSw"),
		obsEv(ObservedToVMG, "rptSw"),
		obsEv(ObservedToECU, "reqApp"),
		obsEv(ObservedToVMG, "rptUpd"),
		obsEv(ObservedToECU, "reqSw"),
	}
	if res := acceptsObserved(t, cfg, good); !res.Accepted {
		t.Fatalf("protocol cycle should conform, failed at %d (%v, allowed %v)",
			res.FailedAt, res.BadEvent, res.Allowed)
	}
	bad := csp.Trace{
		obsEv(ObservedToECU, "reqSw"),
		obsEv(ObservedToVMG, "rptUpd"), // flawed-ECU symptom: wrong reply
	}
	res := acceptsObserved(t, cfg, bad)
	if res.Accepted {
		t.Fatal("wrong reply type should not conform")
	}
	if res.FailedAt != 1 {
		t.Errorf("FailedAt = %d, want 1", res.FailedAt)
	}
}

// TestObservedSpuriousBudget: a duplicated report is rejected by the
// exact channel and absorbed by one spurious-delivery credit.
func TestObservedSpuriousBudget(t *testing.T) {
	dup := csp.Trace{
		obsEv(ObservedToECU, "reqSw"),
		obsEv(ObservedToVMG, "rptSw"),
		obsEv(ObservedToVMG, "rptSw"),
	}
	exact := ObservedConfigFor(NaiveGateway, ChannelBudgets{})
	if res := acceptsObserved(t, exact, dup); res.Accepted {
		t.Fatal("duplicate report should not conform under the exact channel")
	}
	slack := ObservedConfigFor(NaiveGateway, ChannelBudgets{SpurToVMG: 1})
	if res := acceptsObserved(t, slack, dup); !res.Accepted {
		t.Fatalf("duplicate report should conform with SpurToVMG=1, failed at %d (allowed %v)",
			res.FailedAt, res.Allowed)
	}
}

// TestObservedDropBudget: the hardened gateway retries an unanswered
// inventory request. Four delivered requests with no report overflow
// the exact channel (two queued responses fill the return queue, the
// third blocks the ECU before it can take request four); drop credits
// make room by destroying queued responses, exactly what a lossy run
// did.
func TestObservedDropBudget(t *testing.T) {
	retries := csp.Trace{
		obsEv(ObservedToECU, "reqSw"),
		obsEv(ObservedToECU, "reqSw"),
		obsEv(ObservedToECU, "reqSw"),
		obsEv(ObservedToECU, "reqSw"),
		obsEv(ObservedToVMG, "rptSw"),
	}
	exact := ObservedConfigFor(HardenedGateway, ChannelBudgets{})
	if res := acceptsObserved(t, exact, retries); res.Accepted {
		t.Fatal("quadruple retry with lost reports should not conform under the exact channel")
	} else if res.FailedAt != 3 {
		t.Errorf("FailedAt = %d, want 3 (the fourth request)", res.FailedAt)
	}
	slack := ObservedConfigFor(HardenedGateway, ChannelBudgets{DropToVMG: 2})
	if res := acceptsObserved(t, slack, retries); !res.Accepted {
		t.Fatalf("triple retry should conform with DropToVMG=2, failed at %d (allowed %v)",
			res.FailedAt, res.Allowed)
	}
}

// TestObservedBudgetValidation rejects negative budgets.
func TestObservedBudgetValidation(t *testing.T) {
	cfg := ObservedConfigFor(NaiveGateway, ChannelBudgets{DropToECU: -1})
	if _, err := BuildObserved(cfg); err == nil {
		t.Fatal("negative budget should be rejected")
	}
}
