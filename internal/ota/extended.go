package ota

import (
	"fmt"

	"repro/internal/capl"
	"repro/internal/cspm"
	"repro/internal/translate"
)

// This file implements the paper's section VIII-A future-work items on
// top of the base case study:
//
//  1. a timer-driven VMG whose extracted model uses the untimed timer
//     abstraction (setTimer/timeout events) composed with the TIMER(t)
//     lifecycle process, and
//  2. the full ITU-T X.1373 message set with an update server —
//     diagnose, update_check, update and update_report exchanged
//     between server and VMG over the cellular link, gatewayed onto the
//     CAN exchange with the ECU.

// timerSpecSection composes the timer-variant system and its checks.
// The TIMER process serialises arming and expiry, so the VMG cannot
// fire spurious timeouts.
const timerSpecSection = `
-- Timer-variant composition: the VMG paces itself with a CANoe timer.
VMGT = VMG [| {| setTimer, cancelTimer, timeout |} |] TIMER(updateCycle)
SYSTEMT = VMGT [| {| send, rec |} |] ECU

SP02 = send.reqSw -> rec.rptSw -> SP02
HIDDENT = SYSTEMT \ {| setTimer, cancelTimer, timeout |}
DIAGT = HIDDENT \ {send.reqApp, rec.rptUpd}

assert SP02 [T= DIAGT
assert SYSTEMT :[deadlock free]
assert DIAGT :[divergence free]
`

// Assertion indices of the timer-variant script.
const (
	TimerAssertSP02 = iota
	TimerAssertDeadlock
	TimerAssertDivergence
	numTimerAsserts
)

// BuildWithTimers assembles the timer-driven case-study variant: the
// VMG of VMGTimerSource drives the update cycle from a CANoe msTimer;
// the extracted model composes with the generated TIMER(t) process.
func BuildWithTimers() (*System, error) {
	ecuProg, err := capl.Parse(ECUSource)
	if err != nil {
		return nil, fmt.Errorf("parse ECU CAPL: %w", err)
	}
	vmgProg, err := capl.Parse(VMGTimerSource)
	if err != nil {
		return nil, fmt.Errorf("parse VMG CAPL: %w", err)
	}
	ecuOpts := translate.Options{
		NodeName:      "ECU",
		InChannel:     "send",
		OutChannel:    "rec",
		MsgDatatype:   "Msgs",
		MessageRename: MessageRename,
		ExtraMessages: allMessages,
		// The ECU translation carries the declarations, so it must also
		// declare the VMG's timer.
		ExtraTimers:   []string{"updateCycle"},
		IncludeTimers: true,
	}
	ecuRes, err := translate.Translate(ecuProg, ecuOpts)
	if err != nil {
		return nil, fmt.Errorf("extract ECU model: %w", err)
	}
	vmgOpts := translate.Options{
		NodeName:             "VMG",
		InChannel:            "rec",
		OutChannel:           "send",
		MsgDatatype:          "Msgs",
		MessageRename:        MessageRename,
		ExtraMessages:        allMessages,
		IncludeTimers:        true,
		GenerateTimerProcess: true,
		OmitDecls:            true,
	}
	vmgRes, err := translate.Translate(vmgProg, vmgOpts)
	if err != nil {
		return nil, fmt.Errorf("extract VMG model: %w", err)
	}
	combined := ecuRes.Text + "\n" + vmgRes.Text + timerSpecSection
	model, err := cspm.Load(combined)
	if err != nil {
		return nil, fmt.Errorf("evaluate timer-variant model: %w\n%s", err, combined)
	}
	if len(model.Asserts) != numTimerAsserts {
		return nil, fmt.Errorf("timer variant has %d assertions, want %d",
			len(model.Asserts), numTimerAsserts)
	}
	sys := &System{
		Model:   model,
		Source:  combined,
		ECUText: ecuRes.Text,
		VMGText: vmgRes.Text,
	}
	sys.Warnings = append(sys.Warnings, ecuRes.Warnings...)
	sys.Warnings = append(sys.Warnings, vmgRes.Warnings...)
	return sys, nil
}

// fullX1373Section models the update server and the cellular link,
// following the X.1373 message flow the paper defers to future work:
// the server drives diagnose -> update_check -> update cycles; the VMG
// gateways the diagnose onto the CAN inventory exchange and the update
// onto the CAN apply exchange.
const fullX1373Section = `
-- ITU-T X.1373 server-side message set (paper section VIII-A).
datatype SrvMsgs = diagnose | diagRpt | updateCheck | updateAvail | applyCmd | updateReport
channel toVMG, fromVMG : SrvMsgs

SERVER = toVMG!diagnose -> fromVMG.diagRpt ->
         toVMG!updateCheck -> fromVMG.updateAvail ->
         toVMG!applyCmd -> fromVMG.updateReport -> SERVER

-- The gateway VMG: each server command maps onto the CAN exchange.
GW = toVMG.diagnose -> send!reqSw -> rec.rptSw -> fromVMG!diagRpt -> GW2
GW2 = toVMG.updateCheck -> fromVMG!updateAvail -> GW3
GW3 = toVMG.applyCmd -> send!reqApp -> rec.rptUpd -> fromVMG!updateReport -> GW

FULL = SERVER [| {| toVMG, fromVMG |} |] (GW [| {| send, rec |} |] ECU)

-- End-to-end property: every server update command results in an ECU
-- update report, in order.
SPE2E = toVMG.applyCmd -> fromVMG.updateReport -> SPE2E
E2EVIEW = FULL \ union({| send, rec |}, {toVMG.diagnose, fromVMG.diagRpt, toVMG.updateCheck, fromVMG.updateAvail})

-- The CAN-side integrity property still holds under the full stack.
SP02F = send.reqSw -> rec.rptSw -> SP02F
DIAGF = FULL \ union({| toVMG, fromVMG |}, {send.reqApp, rec.rptUpd})

assert SPE2E [T= E2EVIEW
assert SP02F [T= DIAGF
assert FULL :[deadlock free]
assert FULL :[divergence free]
`

// Assertion indices of the full-X.1373 script.
const (
	FullAssertE2E = iota
	FullAssertSP02
	FullAssertDeadlock
	FullAssertDivergence
	numFullAsserts
)

// BuildFullX1373 assembles the three-tier system: update server (CSPm
// specification-level model), gateway VMG, and the ECU model extracted
// from CAPL.
func BuildFullX1373() (*System, error) {
	ecuProg, err := capl.Parse(ECUSource)
	if err != nil {
		return nil, fmt.Errorf("parse ECU CAPL: %w", err)
	}
	ecuOpts := translate.Options{
		NodeName:      "ECU",
		InChannel:     "send",
		OutChannel:    "rec",
		MsgDatatype:   "Msgs",
		MessageRename: MessageRename,
		ExtraMessages: allMessages,
		IncludeTimers: true,
	}
	ecuRes, err := translate.Translate(ecuProg, ecuOpts)
	if err != nil {
		return nil, fmt.Errorf("extract ECU model: %w", err)
	}
	combined := ecuRes.Text + fullX1373Section
	model, err := cspm.Load(combined)
	if err != nil {
		return nil, fmt.Errorf("evaluate full X.1373 model: %w\n%s", err, combined)
	}
	if len(model.Asserts) != numFullAsserts {
		return nil, fmt.Errorf("full model has %d assertions, want %d",
			len(model.Asserts), numFullAsserts)
	}
	return &System{
		Model:    model,
		Source:   combined,
		ECUText:  ecuRes.Text,
		Warnings: ecuRes.Warnings,
	}, nil
}

// loadVariant evaluates a modified copy of a generated script, used by
// tests and experiments that mutate the model text.
func loadVariant(source string) (*cspm.Model, error) {
	return cspm.Load(source)
}
