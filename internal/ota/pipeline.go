package ota

import (
	"fmt"

	"repro/internal/capl"
	"repro/internal/cspm"
	"repro/internal/translate"
)

// System is the fully assembled case-study model: the extracted ECU and
// VMG implementation models, the specification processes, the composed
// SYSTEM, and the Table III assertions — evaluated and ready to check.
type System struct {
	// Model is the evaluated combined script.
	Model *cspm.Model
	// Source is the complete combined CSPm source.
	Source string
	// ECUText and VMGText are the per-node extracted models (ECUText is
	// the Figure 3 artefact).
	ECUText string
	VMGText string
	// Warnings aggregates translator abstraction warnings.
	Warnings []string
}

// allMessages lists the constructors every node's datatype must carry.
var allMessages = []string{"reqSw", "rptSw", "reqApp", "rptUpd"}

// specSection holds the specification models and assertions appended to
// the extracted implementation models. Assertion order is significant:
// requirements.go indexes into it.
const specSection = `
-- Specification models (security properties for Table III).
RUNALL = send?x1 -> RUNALL [] rec?x2 -> RUNALL
SP01 = send.reqSw -> RUNALL
SP02 = send.reqSw -> rec.rptSw -> SP02
SP034 = send.reqApp -> rec.rptUpd -> SP034

-- Composed system model (Figure 2 scope).
SYSTEM = VMG [| {| send, rec |} |] ECU
DIAG = SYSTEM \ {send.reqApp, rec.rptUpd}
UPDATE = SYSTEM \ {send.reqSw, rec.rptSw}

assert SP01 [T= SYSTEM
assert SP02 [T= DIAG
assert SP034 [T= UPDATE
assert SYSTEM :[deadlock free]
assert SYSTEM :[divergence free]
`

// Assertion indices within the combined script.
const (
	AssertR01 = iota
	AssertR02
	AssertR034
	AssertDeadlock
	AssertDivergence
	numAsserts
)

// Build assembles the correct case-study system from the canonical CAPL
// sources.
func Build() (*System, error) {
	return BuildFromCAPL(ECUSource, VMGSource)
}

// BuildFlawed assembles the system with the flawed ECU that answers
// inventory requests with the wrong message type.
func BuildFlawed() (*System, error) {
	return BuildFromCAPL(FlawedECUSource, VMGSource)
}

// BuildDeadlocked assembles the system with the ECU that swallows
// inventory requests.
func BuildDeadlocked() (*System, error) {
	return BuildFromCAPL(DeadlockECUSource, VMGSource)
}

// BuildFromCAPL runs the full Figure 1 pipeline: parse both CAPL node
// programs, extract their CSPm implementation models, compose them with
// the specification models, and evaluate the result.
func BuildFromCAPL(ecuSrc, vmgSrc string) (*System, error) {
	ecuProg, err := capl.Parse(ecuSrc)
	if err != nil {
		return nil, fmt.Errorf("parse ECU CAPL: %w", err)
	}
	vmgProg, err := capl.Parse(vmgSrc)
	if err != nil {
		return nil, fmt.Errorf("parse VMG CAPL: %w", err)
	}

	ecuOpts := translate.Options{
		NodeName:      "ECU",
		InChannel:     "send",
		OutChannel:    "rec",
		MsgDatatype:   "Msgs",
		MessageRename: MessageRename,
		ExtraMessages: allMessages,
		IncludeTimers: true,
	}
	ecuRes, err := translate.Translate(ecuProg, ecuOpts)
	if err != nil {
		return nil, fmt.Errorf("extract ECU model: %w", err)
	}

	vmgOpts := translate.Options{
		NodeName:      "VMG",
		InChannel:     "rec",
		OutChannel:    "send",
		MsgDatatype:   "Msgs",
		MessageRename: MessageRename,
		ExtraMessages: allMessages,
		IncludeTimers: true,
		OmitDecls:     true,
	}
	vmgRes, err := translate.Translate(vmgProg, vmgOpts)
	if err != nil {
		return nil, fmt.Errorf("extract VMG model: %w", err)
	}

	combined := ecuRes.Text + "\n" + vmgRes.Text + specSection
	model, err := cspm.Load(combined)
	if err != nil {
		return nil, fmt.Errorf("evaluate combined model: %w\n%s", err, combined)
	}
	if len(model.Asserts) != numAsserts {
		return nil, fmt.Errorf("combined model has %d assertions, want %d", len(model.Asserts), numAsserts)
	}
	sys := &System{
		Model:   model,
		Source:  combined,
		ECUText: ecuRes.Text,
		VMGText: vmgRes.Text,
	}
	sys.Warnings = append(sys.Warnings, ecuRes.Warnings...)
	sys.Warnings = append(sys.Warnings, vmgRes.Warnings...)
	return sys, nil
}
