package ota

import "repro/internal/candb"

// DBCSource is the CAN database of the simulated update network: the
// Table II message types with the identifiers and sending nodes the
// CAPL programs use. It is the identifier->model-event dictionary the
// conformance harness projects bus traces through (message name lowered
// per candb.CtorName gives the CAPL variable, MessageRename gives the
// X.1373 constructor, the sender gives the direction).
const DBCSource = `VERSION "X.1373 demo"
BU_: VMG ECU

BO_ 257 SwInventoryReq: 8 VMG
 SG_ Pad : 0|8@1+ (1,0) [0|255] "" ECU

BO_ 258 SwInventoryRpt: 8 ECU
 SG_ Pad : 0|8@1+ (1,0) [0|255] "" VMG

BO_ 259 ApplyUpdateReq: 8 VMG
 SG_ Seq : 0|8@1+ (1,0) [0|1] "" ECU

BO_ 260 UpdateResultRpt: 8 ECU
 SG_ Seq : 0|8@1+ (1,0) [0|1] "" VMG
`

// Database parses DBCSource.
func Database() (*candb.Database, error) {
	return candb.Parse(DBCSource)
}
