// Package st is a small text-template engine modelled on ANTLR's
// StringTemplate (Parr, "Enforcing strict model-view separation in
// template engines"), which the paper uses to render CSPm output from
// the parsed CAPL AST (section IV-C). It deliberately keeps logic out of
// templates: a template may substitute attributes, join list attributes
// with a separator, apply a named sub-template to each list element, and
// include text conditionally on an attribute's presence — nothing more.
//
// Syntax (delimiter $ ... $ as in classic StringTemplate):
//
//	$name$                        substitute attribute
//	$names; separator=", "$       join list attribute
//	$names:item()$                apply template "item" to each element
//	$names:item(); separator="x"$ apply and join
//	$if(name)$ ... $else$ ... $endif$
//	$$                            literal dollar sign
//
// Attribute values are strings, []string, []Attrs (for template
// application) or Attrs (nested scope for application of a template).
package st

import (
	"fmt"
	"strings"
)

// Attrs is the attribute environment a template renders against.
type Attrs map[string]any

// Group is a named collection of templates that can reference each
// other through the application syntax.
type Group struct {
	templates map[string]string
}

// NewGroup creates an empty template group.
func NewGroup() *Group {
	return &Group{templates: map[string]string{}}
}

// Define registers a template under a name, replacing any previous
// definition.
func (g *Group) Define(name, body string) {
	g.templates[name] = body
}

// RenderError is the typed panic value raised by MustRender, so callers
// that render statically known templates can recover it at an API
// boundary (see RecoverRender) instead of crashing the process on a
// template typo.
type RenderError struct {
	// Template is the name of the template that failed.
	Template string
	// Err is the underlying render failure.
	Err error
}

func (e *RenderError) Error() string {
	return fmt.Sprintf("st render %q: %v", e.Template, e.Err)
}

func (e *RenderError) Unwrap() error { return e.Err }

// RecoverRender converts a *RenderError panic into an assignment to
// *errp; other panic values are re-raised. An already-set *errp is not
// overwritten.
func RecoverRender(errp *error) {
	r := recover()
	if r == nil {
		return
	}
	re, ok := r.(*RenderError)
	if !ok {
		panic(r)
	}
	if *errp == nil {
		*errp = re
	}
}

// MustRender renders like Render but panics on error; for statically
// known templates. The panic value is a *RenderError.
func (g *Group) MustRender(name string, attrs Attrs) string {
	out, err := g.Render(name, attrs)
	if err != nil {
		panic(&RenderError{Template: name, Err: err})
	}
	return out
}

// Render instantiates the named template with the given attributes.
func (g *Group) Render(name string, attrs Attrs) (string, error) {
	body, ok := g.templates[name]
	if !ok {
		return "", fmt.Errorf("template %q not defined", name)
	}
	return g.render(body, attrs)
}

func (g *Group) render(body string, attrs Attrs) (string, error) {
	var sb strings.Builder
	i := 0
	for i < len(body) {
		c := body[i]
		if c != '$' {
			sb.WriteByte(c)
			i++
			continue
		}
		// Find the closing delimiter.
		end := strings.IndexByte(body[i+1:], '$')
		if end < 0 {
			return "", fmt.Errorf("unterminated $...$ expression")
		}
		expr := body[i+1 : i+1+end]
		next := i + end + 2
		if expr == "" { // "$$" is a literal dollar
			sb.WriteByte('$')
			i = next
			continue
		}
		if strings.HasPrefix(expr, "if(") {
			rendered, consumed, err := g.renderIf(body[i:], attrs)
			if err != nil {
				return "", err
			}
			sb.WriteString(rendered)
			i += consumed
			continue
		}
		out, err := g.renderExpr(expr, attrs)
		if err != nil {
			return "", err
		}
		sb.WriteString(out)
		i = next
	}
	return sb.String(), nil
}

// renderIf handles $if(x)$ ... [$else$ ...] $endif$ starting at the
// "$if(" in src. It returns the rendered text and the number of source
// bytes consumed.
func (g *Group) renderIf(src string, attrs Attrs) (string, int, error) {
	// Parse the condition.
	condEnd := strings.Index(src, ")$")
	if condEnd < 0 || !strings.HasPrefix(src, "$if(") {
		return "", 0, fmt.Errorf("malformed $if(...)$")
	}
	cond := src[len("$if("):condEnd]
	negate := false
	if strings.HasPrefix(cond, "!") {
		negate = true
		cond = cond[1:]
	}
	bodyStart := condEnd + 2
	// Scan for matching $else$/$endif$ with nesting support.
	depth := 0
	elseAt := -1
	i := bodyStart
	for i < len(src) {
		switch {
		case strings.HasPrefix(src[i:], "$if("):
			depth++
			i += 4
		case strings.HasPrefix(src[i:], "$endif$"):
			if depth == 0 {
				thenBody := src[bodyStart:i]
				elseBody := ""
				if elseAt >= 0 {
					thenBody = src[bodyStart:elseAt]
					elseBody = src[elseAt+len("$else$") : i]
				}
				truthy := attrPresent(attrs, cond)
				if negate {
					truthy = !truthy
				}
				chosen := elseBody
				if truthy {
					chosen = thenBody
				}
				out, err := g.render(chosen, attrs)
				if err != nil {
					return "", 0, err
				}
				return out, i + len("$endif$"), nil
			}
			depth--
			i += len("$endif$")
		case strings.HasPrefix(src[i:], "$else$") && depth == 0 && elseAt < 0:
			elseAt = i
			i += len("$else$")
		default:
			i++
		}
	}
	return "", 0, fmt.Errorf("missing $endif$ for $if(%s)$", cond)
}

func attrPresent(attrs Attrs, name string) bool {
	v, ok := attrs[name]
	if !ok || v == nil {
		return false
	}
	switch x := v.(type) {
	case string:
		return x != ""
	case []string:
		return len(x) > 0
	case []Attrs:
		return len(x) > 0
	case bool:
		return x
	}
	return true
}

// renderExpr handles a non-conditional expression: attribute reference,
// optional template application, optional separator option.
func (g *Group) renderExpr(expr string, attrs Attrs) (string, error) {
	sep := ""
	hasSep := false
	if at := strings.Index(expr, ";"); at >= 0 {
		opt := strings.TrimSpace(expr[at+1:])
		expr = strings.TrimSpace(expr[:at])
		const pfx = "separator="
		if !strings.HasPrefix(opt, pfx) {
			return "", fmt.Errorf("unknown template option %q", opt)
		}
		raw := strings.TrimPrefix(opt, pfx)
		if len(raw) < 2 || raw[0] != '"' || raw[len(raw)-1] != '"' {
			return "", fmt.Errorf("separator must be a quoted string, got %q", raw)
		}
		sep = unescape(raw[1 : len(raw)-1])
		hasSep = true
	}
	applied := ""
	if at := strings.Index(expr, ":"); at >= 0 {
		applied = strings.TrimSpace(expr[at+1:])
		expr = strings.TrimSpace(expr[:at])
		if !strings.HasSuffix(applied, "()") {
			return "", fmt.Errorf("template application must look like name(), got %q", applied)
		}
		applied = strings.TrimSuffix(applied, "()")
	}
	v, ok := attrs[expr]
	if !ok {
		return "", fmt.Errorf("attribute %q not supplied", expr)
	}
	items, err := toItems(v)
	if err != nil {
		return "", fmt.Errorf("attribute %q: %w", expr, err)
	}
	if !hasSep {
		sep = ""
	}
	parts := make([]string, 0, len(items))
	for _, item := range items {
		if applied == "" {
			s, ok := item.(string)
			if !ok {
				return "", fmt.Errorf("attribute %q has non-string elements; apply a template to it", expr)
			}
			parts = append(parts, s)
			continue
		}
		var sub Attrs
		switch x := item.(type) {
		case Attrs:
			sub = x
		case string:
			sub = Attrs{"it": x}
		default:
			return "", fmt.Errorf("cannot apply template %q to %T", applied, item)
		}
		out, err := g.Render(applied, sub)
		if err != nil {
			return "", err
		}
		parts = append(parts, out)
	}
	return strings.Join(parts, sep), nil
}

func toItems(v any) ([]any, error) {
	switch x := v.(type) {
	case string:
		return []any{x}, nil
	case []string:
		out := make([]any, len(x))
		for i, s := range x {
			out[i] = s
		}
		return out, nil
	case []Attrs:
		out := make([]any, len(x))
		for i, a := range x {
			out[i] = a
		}
		return out, nil
	case Attrs:
		return []any{x}, nil
	case fmt.Stringer:
		return []any{x.String()}, nil
	case int:
		return []any{fmt.Sprintf("%d", x)}, nil
	}
	return nil, fmt.Errorf("unsupported attribute type %T", v)
}

func unescape(s string) string {
	s = strings.ReplaceAll(s, `\n`, "\n")
	s = strings.ReplaceAll(s, `\t`, "\t")
	return s
}
