package st

import (
	"errors"
	"strings"
	"testing"
)

func TestSimpleSubstitution(t *testing.T) {
	g := NewGroup()
	g.Define("greet", "Hello, $name$!")
	out, err := g.Render("greet", Attrs{"name": "world"})
	if err != nil {
		t.Fatal(err)
	}
	if out != "Hello, world!" {
		t.Errorf("out = %q", out)
	}
}

func TestListWithSeparator(t *testing.T) {
	g := NewGroup()
	g.Define("chan", `channel $names; separator=", "$ : Msgs`)
	out, err := g.Render("chan", Attrs{"names": []string{"send", "rec"}})
	if err != nil {
		t.Fatal(err)
	}
	if out != "channel send, rec : Msgs" {
		t.Errorf("out = %q", out)
	}
}

func TestTemplateApplication(t *testing.T) {
	g := NewGroup()
	g.Define("proc", `$defs:def(); separator="\n"$`)
	g.Define("def", "$name$ = $body$")
	out, err := g.Render("proc", Attrs{
		"defs": []Attrs{
			{"name": "P", "body": "a -> P"},
			{"name": "Q", "body": "STOP"},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	want := "P = a -> P\nQ = STOP"
	if out != want {
		t.Errorf("out = %q, want %q", out, want)
	}
}

func TestApplicationToStrings(t *testing.T) {
	g := NewGroup()
	g.Define("list", `$xs:item(); separator=" "$`)
	g.Define("item", "<$it$>")
	out, err := g.Render("list", Attrs{"xs": []string{"a", "b"}})
	if err != nil {
		t.Fatal(err)
	}
	if out != "<a> <b>" {
		t.Errorf("out = %q", out)
	}
}

func TestConditional(t *testing.T) {
	g := NewGroup()
	g.Define("t", "$if(flag)$yes$else$no$endif$")
	if out := g.MustRender("t", Attrs{"flag": "x"}); out != "yes" {
		t.Errorf("present: %q", out)
	}
	if out := g.MustRender("t", Attrs{"flag": ""}); out != "no" {
		t.Errorf("empty: %q", out)
	}
	if out := g.MustRender("t", Attrs{}); out != "no" {
		t.Errorf("absent: %q", out)
	}
}

func TestConditionalNegationAndNesting(t *testing.T) {
	g := NewGroup()
	g.Define("t", "$if(!x)$outer$if(y)$-inner$endif$$endif$")
	if out := g.MustRender("t", Attrs{"y": "1"}); out != "outer-inner" {
		t.Errorf("out = %q", out)
	}
	if out := g.MustRender("t", Attrs{"x": "1", "y": "1"}); out != "" {
		t.Errorf("out = %q, want empty", out)
	}
}

func TestLiteralDollar(t *testing.T) {
	g := NewGroup()
	g.Define("t", "cost: $$$n$")
	if out := g.MustRender("t", Attrs{"n": "5"}); out != "cost: $5" {
		t.Errorf("out = %q", out)
	}
}

func TestBoolAttr(t *testing.T) {
	g := NewGroup()
	g.Define("t", "$if(b)$on$else$off$endif$")
	if out := g.MustRender("t", Attrs{"b": true}); out != "on" {
		t.Errorf("out = %q", out)
	}
	if out := g.MustRender("t", Attrs{"b": false}); out != "off" {
		t.Errorf("out = %q", out)
	}
}

func TestErrors(t *testing.T) {
	g := NewGroup()
	g.Define("unterminated", "$name")
	g.Define("missingAttr", "$nope$")
	g.Define("badOption", `$x; frob="y"$`)
	g.Define("noEndif", "$if(x)$ body")
	g.Define("badApply", "$x:item$")

	cases := []struct {
		tmpl  string
		attrs Attrs
		want  string
	}{
		{"nosuch", nil, "not defined"},
		{"unterminated", Attrs{"name": "x"}, "unterminated"},
		{"missingAttr", Attrs{}, "not supplied"},
		{"badOption", Attrs{"x": "1"}, "unknown template option"},
		{"noEndif", Attrs{"x": "1"}, "missing $endif$"},
		{"badApply", Attrs{"x": "1"}, "template application"},
	}
	for _, tc := range cases {
		_, err := g.Render(tc.tmpl, tc.attrs)
		if err == nil {
			t.Errorf("Render(%q) succeeded, want error %q", tc.tmpl, tc.want)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("Render(%q) error = %v, want substring %q", tc.tmpl, err, tc.want)
		}
	}
}

func TestSeparatorEscapes(t *testing.T) {
	g := NewGroup()
	g.Define("t", `$xs; separator="\n\t"$`)
	out := g.MustRender("t", Attrs{"xs": []string{"a", "b"}})
	if out != "a\n\tb" {
		t.Errorf("out = %q", out)
	}
}

func TestMustRenderPanicsTyped(t *testing.T) {
	g := NewGroup()
	g.Define("t", "$missing$")
	err := func() (err error) {
		defer RecoverRender(&err)
		g.MustRender("t", Attrs{})
		return nil
	}()
	var re *RenderError
	if !errors.As(err, &re) {
		t.Fatalf("recovered %v (%T), want *RenderError", err, err)
	}
	if re.Template != "t" {
		t.Errorf("Template = %q, want t", re.Template)
	}
}

func TestRecoverRenderPassesForeignPanics(t *testing.T) {
	defer func() {
		if r := recover(); r != "boom" {
			t.Fatalf("foreign panic %v should have propagated", r)
		}
	}()
	var err error
	func() {
		defer RecoverRender(&err)
		panic("boom")
	}()
}
