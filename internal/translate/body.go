package translate

import (
	"fmt"

	"repro/internal/capl"
	"repro/internal/caplint"
	"repro/internal/cspm"
)

// stmts translates a statement list into a process expression ending in
// cont. inlining tracks the user-function inlining stack to reject
// recursion.
func (t *translator) stmts(list []capl.Stmt, cont cspm.ProcExpr, inlining []string) (cspm.ProcExpr, error) {
	// Translate back to front so each statement prefixes the rest.
	out := cont
	for i := len(list) - 1; i >= 0; i-- {
		var err error
		out, err = t.stmt(list[i], out, inlining)
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

func (t *translator) stmt(s capl.Stmt, cont cspm.ProcExpr, inlining []string) (cspm.ProcExpr, error) {
	switch x := s.(type) {
	case *capl.BlockStmt:
		return t.stmts(x.Stmts, cont, inlining)

	case *capl.DeclStmt:
		// Local state is abstracted away.
		return cont, nil

	case *capl.ExprStmt:
		return t.exprStmt(x, cont, inlining)

	case *capl.IfStmt:
		return t.ifStmt(x, cont, inlining)

	case *capl.WhileStmt:
		return t.loop(x.Body, cont, inlining, false, x.Line)

	case *capl.ForStmt:
		return t.loop(x.Body, cont, inlining, false, x.Line)

	case *capl.DoWhileStmt:
		return t.loop(x.Body, cont, inlining, true, x.Line)

	case *capl.SwitchStmt:
		return t.switchStmt(x, cont, inlining)

	case *capl.ReturnStmt:
		// Return ends the procedure; anything the caller appended after
		// the call still runs, so the continuation is reached directly.
		return cont, nil

	case *capl.BreakStmt, *capl.ContinueStmt:
		// Loop control inside an already-approximated loop; the
		// approximation (see loop) covers both exits.
		return cont, nil
	}
	return nil, fmt.Errorf("unsupported statement %T", s)
}

func (t *translator) exprStmt(s *capl.ExprStmt, cont cspm.ProcExpr, inlining []string) (cspm.ProcExpr, error) {
	call, ok := s.X.(*capl.CallExpr)
	if !ok {
		// Assignments, increments etc.: pure state, abstracted away.
		return cont, nil
	}
	switch call.Fun {
	case "output":
		if len(call.Args) != 1 {
			return nil, fmt.Errorf("line %d: output() expects one argument", s.Line)
		}
		id, ok := call.Args[0].(*capl.Ident)
		if !ok {
			return nil, fmt.Errorf("line %d: output() argument must be a message variable", s.Line)
		}
		ctor, ok := t.msgCtor[id.Name]
		if !ok {
			return nil, fmt.Errorf("line %d: output(%s): message variable not declared", s.Line, id.Name)
		}
		return cspm.PrefixE{
			Chan:   t.opts.OutChannel,
			Fields: []cspm.FieldE{{Kind: cspm.FieldOut, Expr: cspm.IdentE{Name: ctor}}},
			Cont:   cont,
		}, nil

	case "setTimer", "cancelTimer":
		if !t.opts.IncludeTimers {
			return cont, nil
		}
		if len(call.Args) < 1 {
			return nil, fmt.Errorf("line %d: %s() expects a timer argument", s.Line, call.Fun)
		}
		id, ok := call.Args[0].(*capl.Ident)
		if !ok || !t.timerSet[id.Name] {
			return nil, fmt.Errorf("line %d: %s(): first argument must be a declared timer", s.Line, call.Fun)
		}
		if t.opts.TockTime && call.Fun == "setTimer" {
			ms := int64(t.opts.TockMs) // default: one tock
			if len(call.Args) >= 2 {
				if v, ok := constEval(call.Args[1]); ok {
					ms = v
				} else {
					t.diag(caplint.CodeInexactDuration, s.Line, "non-constant timer duration approximated as one tock")
				}
			}
			return t.tockSetTimerEvent(id.Name, ms, cont)
		}
		ch := SetTimerChan
		if call.Fun == "cancelTimer" {
			ch = CancelTimerChan
		}
		return cspm.PrefixE{
			Chan:   ch,
			Fields: []cspm.FieldE{{Kind: cspm.FieldDot, Expr: cspm.IdentE{Name: id.Name}}},
			Cont:   cont,
		}, nil

	case "write", "writeEx", "writeLineEx":
		// Diagnostics do not appear in the network model.
		return cont, nil
	}

	// User-defined function: inline its body.
	fn, ok := t.prog.Function(call.Fun)
	if !ok {
		t.diag(caplint.CodeUnknownFunc, s.Line, "call to unknown function %s() abstracted away", call.Fun)
		return cont, nil
	}
	for _, active := range inlining {
		if active == call.Fun {
			return nil, fmt.Errorf("line %d: recursive function %s() cannot be inlined", s.Line, call.Fun)
		}
	}
	return t.stmts(fn.Body.Stmts, cont, append(inlining, call.Fun))
}

func (t *translator) ifStmt(s *capl.IfStmt, cont cspm.ProcExpr, inlining []string) (cspm.ProcExpr, error) {
	thenP, err := t.stmt(s.Then, cont, inlining)
	if err != nil {
		return nil, err
	}
	elseP := cont
	if s.Else != nil {
		elseP, err = t.stmt(s.Else, cont, inlining)
		if err != nil {
			return nil, err
		}
	}
	// Conditions over runtime data (message bytes, variables) are not
	// represented in the extracted model; translate to a literal
	// conditional when the condition is compile-time constant, otherwise
	// over-approximate by internal choice.
	if v, ok := constEval(s.Cond); ok {
		if v != 0 {
			return thenP, nil
		}
		return elseP, nil
	}
	if sameProc(thenP, elseP) {
		return thenP, nil
	}
	t.diag(caplint.CodeAbstractedCond, s.Line, "data-dependent condition abstracted to internal choice")
	return cspm.BinProcE{Op: cspm.OpIntChoice, L: thenP, R: elseP}, nil
}

// loop over-approximates a loop whose body communicates: the body runs
// zero or more times (at least once for do-while). Event-free loops are
// dropped entirely.
func (t *translator) loop(body capl.Stmt, cont cspm.ProcExpr, inlining []string, atLeastOnce bool, line int) (cspm.ProcExpr, error) {
	if !t.hasEvents(body, inlining) {
		return cont, nil
	}
	t.auxCount++
	aux := fmt.Sprintf("%s_LOOP%d", t.opts.NodeName, t.auxCount)
	bodyP, err := t.stmt(body, cspm.CallE{Name: aux}, inlining)
	if err != nil {
		return nil, err
	}
	t.defs = append(t.defs, cspm.ProcDef{
		Name: aux,
		Body: cspm.BinProcE{Op: cspm.OpIntChoice, L: bodyP, R: cont},
	})
	t.diag(caplint.CodeAbstractedLoop, line, "loop approximated as zero-or-more iterations (%s)", aux)
	if atLeastOnce {
		return t.stmt(body, cspm.CallE{Name: aux}, inlining)
	}
	return cspm.CallE{Name: aux}, nil
}

func (t *translator) switchStmt(s *capl.SwitchStmt, cont cspm.ProcExpr, inlining []string) (cspm.ProcExpr, error) {
	if len(s.Cases) == 0 {
		return cont, nil
	}
	// A compile-time constant tag selects a single arm.
	if tag, ok := constEval(s.Tag); ok {
		for _, c := range s.Cases {
			if c.Value == nil {
				continue
			}
			if v, ok := constEval(c.Value); ok && v == tag {
				return t.stmts(stripBreak(c.Stmts), cont, inlining)
			}
		}
		for _, c := range s.Cases {
			if c.Value == nil {
				return t.stmts(stripBreak(c.Stmts), cont, inlining)
			}
		}
		return cont, nil
	}
	var arms []cspm.ProcExpr
	sawDefault := false
	for _, c := range s.Cases {
		if c.Value == nil {
			sawDefault = true
		}
		arm, err := t.stmts(stripBreak(c.Stmts), cont, inlining)
		if err != nil {
			return nil, err
		}
		arms = append(arms, arm)
	}
	if !sawDefault {
		arms = append(arms, cont)
	}
	t.diag(caplint.CodeAbstractedCond, s.Line, "switch on runtime data abstracted to internal choice over %d arm(s)", len(arms))
	out := arms[0]
	for _, a := range arms[1:] {
		if sameProc(out, a) {
			continue
		}
		out = cspm.BinProcE{Op: cspm.OpIntChoice, L: out, R: a}
	}
	return out, nil
}

// stripBreak removes a trailing break from a case arm.
func stripBreak(list []capl.Stmt) []capl.Stmt {
	if n := len(list); n > 0 {
		if _, ok := list[n-1].(*capl.BreakStmt); ok {
			return list[:n-1]
		}
	}
	return list
}

// hasEvents reports whether executing the statement can produce any
// event in the extracted model.
func (t *translator) hasEvents(s capl.Stmt, inlining []string) bool {
	switch x := s.(type) {
	case *capl.BlockStmt:
		for _, st := range x.Stmts {
			if t.hasEvents(st, inlining) {
				return true
			}
		}
	case *capl.ExprStmt:
		call, ok := x.X.(*capl.CallExpr)
		if !ok {
			return false
		}
		switch call.Fun {
		case "output":
			return true
		case "setTimer", "cancelTimer":
			return t.opts.IncludeTimers
		case "write", "writeEx", "writeLineEx":
			return false
		}
		if fn, ok := t.prog.Function(call.Fun); ok {
			for _, active := range inlining {
				if active == call.Fun {
					return false
				}
			}
			return t.hasEvents(fn.Body, append(inlining, call.Fun))
		}
	case *capl.IfStmt:
		if t.hasEvents(x.Then, inlining) {
			return true
		}
		if x.Else != nil {
			return t.hasEvents(x.Else, inlining)
		}
	case *capl.WhileStmt:
		return t.hasEvents(x.Body, inlining)
	case *capl.DoWhileStmt:
		return t.hasEvents(x.Body, inlining)
	case *capl.ForStmt:
		return t.hasEvents(x.Body, inlining)
	case *capl.SwitchStmt:
		for _, c := range x.Cases {
			for _, st := range c.Stmts {
				if t.hasEvents(st, inlining) {
					return true
				}
			}
		}
	}
	return false
}

// constEval evaluates compile-time constant integer expressions.
func constEval(e capl.Expr) (int64, bool) {
	switch x := e.(type) {
	case *capl.IntLit:
		return x.Val, true
	case *capl.UnaryExpr:
		v, ok := constEval(x.X)
		if !ok {
			return 0, false
		}
		switch x.Op {
		case capl.MINUS:
			return -v, true
		case capl.BANG:
			if v == 0 {
				return 1, true
			}
			return 0, true
		case capl.TILDE:
			return ^v, true
		}
	case *capl.BinaryExpr:
		l, ok := constEval(x.L)
		if !ok {
			return 0, false
		}
		r, ok := constEval(x.R)
		if !ok {
			return 0, false
		}
		return constBinary(x.Op, l, r)
	}
	return 0, false
}

func constBinary(op capl.Kind, l, r int64) (int64, bool) {
	b2i := func(b bool) int64 {
		if b {
			return 1
		}
		return 0
	}
	switch op {
	case capl.PLUS:
		return l + r, true
	case capl.MINUS:
		return l - r, true
	case capl.STAR:
		return l * r, true
	case capl.SLASH:
		if r == 0 {
			return 0, false
		}
		return l / r, true
	case capl.PERCENT:
		if r == 0 {
			return 0, false
		}
		return l % r, true
	case capl.EQ:
		return b2i(l == r), true
	case capl.NE:
		return b2i(l != r), true
	case capl.LT:
		return b2i(l < r), true
	case capl.LE:
		return b2i(l <= r), true
	case capl.GT:
		return b2i(l > r), true
	case capl.GE:
		return b2i(l >= r), true
	case capl.ANDAND:
		return b2i(l != 0 && r != 0), true
	case capl.OROR:
		return b2i(l != 0 || r != 0), true
	case capl.AMP:
		return l & r, true
	case capl.PIPE:
		return l | r, true
	case capl.CARET:
		return l ^ r, true
	case capl.SHL:
		return l << uint(r&63), true
	case capl.SHR:
		return l >> uint(r&63), true
	}
	return 0, false
}

// sameProc reports whether two translated processes are syntactically
// identical (used to collapse redundant internal choices).
func sameProc(a, b cspm.ProcExpr) bool {
	return cspm.PrintProc(a) == cspm.PrintProc(b)
}
