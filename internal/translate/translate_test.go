package translate

import (
	"strings"
	"testing"

	"repro/internal/capl"
	"repro/internal/cspm"
	"repro/internal/refine"
)

// ecuSource is the demonstration ECU node of the case study (Figure 2),
// programmed as a CANoe network node.
const ecuSource = `
/*@!Encoding:1310*/
variables
{
  message 0x101 swInventoryReq;   // reqSw
  message 0x102 swInventoryRpt;   // rptSw
  message 0x103 applyUpdateReq;   // reqApp
  message 0x104 updateResultRpt;  // rptUpd
  int updatesApplied = 0;
}

on message swInventoryReq
{
  output(swInventoryRpt);
}

on message applyUpdateReq
{
  applyUpdate();
  output(updateResultRpt);
}

void applyUpdate()
{
  updatesApplied = updatesApplied + 1;
}
`

var paperRename = map[string]string{
	"swInventoryReq":  "reqSw",
	"swInventoryRpt":  "rptSw",
	"applyUpdateReq":  "reqApp",
	"updateResultRpt": "rptUpd",
}

func translateECU(t *testing.T) *Result {
	t.Helper()
	prog, err := capl.Parse(ecuSource)
	if err != nil {
		t.Fatal(err)
	}
	opts := DefaultOptions("ECU")
	opts.MessageRename = paperRename
	res, err := Translate(prog, opts)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestECUTranslationShape(t *testing.T) {
	res := translateECU(t)
	text := res.Text
	for _, want := range []string{
		"datatype Msgs = reqSw | rptSw | reqApp | rptUpd",
		"channel send, rec : Msgs",
		"ECU = ",
		"send.reqSw -> rec!rptSw -> ECU",
		"send.reqApp -> rec!rptUpd -> ECU",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("generated text missing %q:\n%s", want, text)
		}
	}
	if len(res.Warnings) != 0 {
		t.Errorf("unexpected warnings: %v", res.Warnings)
	}
}

func TestECUModelBehaviour(t *testing.T) {
	res := translateECU(t)
	// Append the paper's SP_02 property and check it against the
	// extracted model under the diagnose-only projection — the
	// end-to-end path of Figure 1.
	combined := res.Text + `
SP02 = send.reqSw -> rec.rptSw -> SP02
DIAG = ECU \ {send.reqApp, rec.rptUpd}
assert SP02 [T= DIAG
`
	m, err := cspm.Load(combined)
	if err != nil {
		t.Fatal(err)
	}
	c := refine.NewChecker(m.Env, m.Ctx)
	checkRes, err := c.RefinesTraces(m.Asserts[0].Spec, m.Asserts[0].Impl)
	if err != nil {
		t.Fatal(err)
	}
	if !checkRes.Holds {
		t.Errorf("SP02 violated by extracted ECU: %s (%s)", checkRes.Counterexample, checkRes.Reason)
	}
}

func TestVMGTranslationDirections(t *testing.T) {
	const vmgSource = `
variables
{
  message 0x101 swInventoryReq;
  message 0x102 swInventoryRpt;
}
on start { output(swInventoryReq); }
on message swInventoryRpt { output(swInventoryReq); }
`
	prog, err := capl.Parse(vmgSource)
	if err != nil {
		t.Fatal(err)
	}
	opts := Options{
		NodeName:      "VMG",
		InChannel:     "rec",
		OutChannel:    "send",
		MsgDatatype:   "Msgs",
		MessageRename: paperRename,
		IncludeTimers: true,
	}
	res, err := Translate(prog, opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"VMG = send!reqSw -> VMG_RUN",
		"VMG_RUN = rec.rptSw -> send!reqSw -> VMG_RUN",
	} {
		if !strings.Contains(res.Text, want) {
			t.Errorf("missing %q in:\n%s", want, res.Text)
		}
	}
}

func TestTimerTranslation(t *testing.T) {
	const src = `
variables
{
  message 0x1 ping;
  msTimer cycle;
}
on start { setTimer(cycle, 100); }
on timer cycle { output(ping); setTimer(cycle, 100); }
`
	prog, err := capl.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	opts := DefaultOptions("NODE")
	opts.GenerateTimerProcess = true
	res, err := Translate(prog, opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"datatype Timers = cycle",
		"channel setTimer, cancelTimer, timeout : Timers",
		"NODE = setTimer.cycle -> NODE_RUN",
		"NODE_RUN = timeout.cycle -> rec!ping -> setTimer.cycle -> NODE_RUN",
		"TIMER(t) = setTimer!t ->",
	} {
		if !strings.Contains(res.Text, want) {
			t.Errorf("missing %q in:\n%s", want, res.Text)
		}
	}
	// The generated script must evaluate.
	if _, err := cspm.Load(res.Text); err != nil {
		t.Fatalf("generated script does not evaluate: %v", err)
	}
}

func TestTimersDisabled(t *testing.T) {
	const src = `
variables
{
  message 0x1 ping;
  msTimer cycle;
}
on timer cycle { output(ping); }
on message ping { setTimer(cycle, 5); }
`
	prog, err := capl.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	opts := DefaultOptions("NODE")
	opts.IncludeTimers = false
	res, err := Translate(prog, opts)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(res.Text, "setTimer") || strings.Contains(res.Text, "timeout") {
		t.Errorf("timer events present despite IncludeTimers=false:\n%s", res.Text)
	}
	if len(res.Warnings) == 0 {
		t.Error("dropping a timer handler should warn")
	}
}

func TestConditionAbstractedToInternalChoice(t *testing.T) {
	const src = `
variables
{
  message 0x1 req;
  message 0x2 ok;
  message 0x3 nak;
  int state = 0;
}
on message req
{
  if (state == 0) {
    output(ok);
  } else {
    output(nak);
  }
}
`
	prog, err := capl.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Translate(prog, DefaultOptions("N"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Text, "|~|") {
		t.Errorf("runtime condition should become internal choice:\n%s", res.Text)
	}
	found := false
	for _, w := range res.Warnings {
		if strings.Contains(w, "internal choice") {
			found = true
		}
	}
	if !found {
		t.Errorf("expected abstraction warning, got %v", res.Warnings)
	}
}

func TestConstantConditionFolded(t *testing.T) {
	const src = `
variables
{
  message 0x1 a;
  message 0x2 b;
}
on message a
{
  if (1 + 1 == 2) {
    output(b);
  } else {
    output(a);
  }
}
`
	prog, err := capl.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Translate(prog, DefaultOptions("N"))
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(res.Text, "|~|") {
		t.Errorf("constant condition should fold, not branch:\n%s", res.Text)
	}
	if !strings.Contains(res.Text, "send.a -> rec!b -> N") {
		t.Errorf("folded branch wrong:\n%s", res.Text)
	}
}

func TestLoopApproximation(t *testing.T) {
	const src = `
variables
{
  message 0x1 chunk;
  message 0x2 fin;
}
on message fin
{
  int i;
  for (i = 0; i < 8; i++) {
    output(chunk);
  }
  output(fin);
}
`
	prog, err := capl.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Translate(prog, DefaultOptions("N"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Text, "N_LOOP1") {
		t.Errorf("expected auxiliary loop process:\n%s", res.Text)
	}
	m, err := cspm.Load(res.Text)
	if err != nil {
		t.Fatalf("loop translation does not evaluate: %v\n%s", err, res.Text)
	}
	_ = m
}

func TestEventFreeLoopDropped(t *testing.T) {
	const src = `
variables
{
  message 0x1 a;
}
on message a
{
  int i, sum;
  for (i = 0; i < 8; i++) { sum += i; }
  output(a);
}
`
	prog, err := capl.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Translate(prog, DefaultOptions("N"))
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(res.Text, "LOOP") {
		t.Errorf("event-free loop should vanish:\n%s", res.Text)
	}
}

func TestSwitchAbstraction(t *testing.T) {
	const src = `
variables
{
  message 0x1 q;
  message 0x2 r1;
  message 0x3 r2;
}
on message q
{
  switch (this.byte(0)) {
    case 1:
      output(r1);
      break;
    default:
      output(r2);
  }
}
`
	prog, err := capl.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Translate(prog, DefaultOptions("N"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Text, "|~|") {
		t.Errorf("switch on message data should become internal choice:\n%s", res.Text)
	}
	if !strings.Contains(res.Text, "rec!r1") || !strings.Contains(res.Text, "rec!r2") {
		t.Errorf("switch arms missing:\n%s", res.Text)
	}
}

func TestFunctionInliningAndRecursionRejected(t *testing.T) {
	const recursive = `
variables { message 0x1 a; }
on message a { spin(); }
void spin() { spin(); }
`
	prog, err := capl.Parse(recursive)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Translate(prog, DefaultOptions("N")); err == nil {
		t.Error("recursive function inlining must be rejected")
	} else if !strings.Contains(err.Error(), "recursive") {
		t.Errorf("error = %v, want recursion message", err)
	}
}

func TestOnMessageByID(t *testing.T) {
	const src = `
variables { message 0x123 ping; }
on message 0x123 { output(ping); }
`
	prog, err := capl.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Translate(prog, DefaultOptions("N"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Text, "send.ping -> rec!ping -> N") {
		t.Errorf("on message by id mis-translated:\n%s", res.Text)
	}
}

func TestOnMessageWildcard(t *testing.T) {
	const src = `
variables { message 0x1 a; message 0x2 b; }
on message * { output(a); }
`
	prog, err := capl.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Translate(prog, DefaultOptions("N"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Text, "send?anyMsg -> rec!a -> N") {
		t.Errorf("wildcard handler mis-translated:\n%s", res.Text)
	}
	m, err := cspm.Load(res.Text)
	if err != nil {
		t.Fatal(err)
	}
	_ = m
}

func TestOmitDeclsAndExtraMessages(t *testing.T) {
	const src = `
variables { message 0x1 a; }
on message a { output(a); }
`
	prog, err := capl.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	opts := DefaultOptions("N")
	opts.OmitDecls = true
	opts.ExtraMessages = []string{"b"}
	res, err := Translate(prog, opts)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(res.Text, "datatype") || strings.Contains(res.Text, "channel") {
		t.Errorf("OmitDecls output still contains declarations:\n%s", res.Text)
	}
	if !strings.Contains(res.Text, "N = send.a -> rec!a -> N") {
		t.Errorf("definitions missing:\n%s", res.Text)
	}
}

func TestTranslateErrors(t *testing.T) {
	cases := []struct {
		name, src, want string
	}{
		{"no messages", "variables { int x; }\non start { }\n", "no message declarations"},
		{"unknown msg", "variables { message 0x1 a; }\non message nope { }\n", "not declared"},
		{"unknown id", "variables { message 0x1 a; }\non message 0x99 { }\n", "no message with that identifier"},
		{"unknown timer", "variables { message 0x1 a; }\non timer tx { }\n", "not declared"},
		{"bad output", "variables { message 0x1 a; }\non message a { output(5); }\n", "must be a message variable"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			prog, err := capl.Parse(tc.src)
			if err != nil {
				t.Fatal(err)
			}
			_, err = Translate(prog, DefaultOptions("N"))
			if err == nil {
				t.Fatalf("expected error containing %q", tc.want)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error = %v, want substring %q", err, tc.want)
			}
		})
	}
}

func TestGeneratedScriptAlwaysParses(t *testing.T) {
	res := translateECU(t)
	if _, err := cspm.Parse(res.Text); err != nil {
		t.Fatalf("generated CSPm unparsable: %v", err)
	}
	if _, err := cspm.Load(res.Text); err != nil {
		t.Fatalf("generated CSPm does not evaluate: %v", err)
	}
}
