// Package translate is the model extractor at the centre of Figure 1 of
// the paper: it walks a parsed CAPL program (the implementation of an
// ECU node) and produces a CSPm implementation model — both as a
// cspm.Script AST and as rendered CSPm text — ready for the FDR-style
// refinement checker.
//
// The extraction rules follow section VI and the §VIII-A future-work
// extensions:
//
//   - message declarations become a CSPm datatype plus typed channel
//     declarations;
//   - `on message X` event procedures become external-choice branches of
//     a recursive node process, prefixed by the receive event;
//   - output() statements become send events;
//   - `on timer` procedures and setTimer()/cancelTimer() calls become
//     events on dedicated timer channels (the untimed abstraction of
//     section VII-B);
//   - user-defined functions are inlined;
//   - data-dependent control flow that the model cannot represent is
//     soundly over-approximated by internal choice, and each such
//     abstraction is reported as a warning.
package translate

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/candb"
	"repro/internal/capl"
	"repro/internal/caplint"
	"repro/internal/cspm"
	"repro/internal/st"
)

// Options configures a translation.
type Options struct {
	// NodeName is the name of the generated node process (e.g. "ECU").
	NodeName string
	// InChannel carries messages the node receives; OutChannel carries
	// messages the node outputs. For the paper's case study the ECU
	// receives on "send" (the VMG's sends) and replies on "rec".
	InChannel  string
	OutChannel string
	// MsgDatatype names the generated message datatype (default "Msgs").
	MsgDatatype string
	// MessageRename maps CAPL message variable names to CSPm constructor
	// names (e.g. swInventoryReq -> reqSw). Unmapped names are used
	// verbatim.
	MessageRename map[string]string
	// ExtraMessages lists constructor names that must be part of the
	// message datatype even if this node never declares them (so that
	// two independently translated nodes share one datatype).
	ExtraMessages []string
	// ExtraTimers likewise forces timer constructors into the Timers
	// datatype for multi-node composition.
	ExtraTimers []string
	// OmitDecls suppresses datatype and channel declarations in the
	// output, emitting process definitions only. Used when composing a
	// second node into a script that already declares the shared
	// alphabet.
	OmitDecls bool
	// IncludeTimers translates timer interactions into setTimer/
	// cancelTimer/timeout events; when false, timer code is dropped.
	IncludeTimers bool
	// GenerateTimerProcess emits a TIMER(t) process modelling the timer
	// lifecycle, for composition with the node.
	GenerateTimerProcess bool
	// TockTime selects the tock-CSP timed abstraction of section VII-B:
	// a `tock` event marks time passage, setTimer carries a duration in
	// tocks, and the generated TIMER counts down. Implies timer events.
	TockTime bool
	// TockMs is the CAPL-millisecond length of one tock (default 100).
	TockMs int
	// Templates overrides the output template group.
	Templates *st.Group
	// SourceFile labels diagnostics with the CAPL filename.
	SourceFile string
	// Strict runs the caplint static analyzer before extraction and
	// refuses to translate when it reports any error-severity finding
	// (returning a *LintError). The extracted text is byte-identical to
	// a non-strict run on clean input: the analyzer only gates, it
	// never rewrites.
	Strict bool
	// DB is the optional CAN database for the strict pre-translation
	// cross-check (messages and signal widths).
	DB *candb.Database
}

// DefaultOptions returns the configuration used for the paper's ECU
// node.
func DefaultOptions(node string) Options {
	return Options{
		NodeName:      node,
		InChannel:     "send",
		OutChannel:    "rec",
		MsgDatatype:   "Msgs",
		IncludeTimers: true,
	}
}

// Result is the outcome of a translation.
type Result struct {
	// Script is the extracted model as a CSPm syntax tree.
	Script *cspm.Script
	// Text is the rendered CSPm source.
	Text string
	// Warnings lists the abstractions applied (state dropped, conditions
	// over-approximated, loops approximated) as plain strings; Diags
	// carries the same findings with stable codes, severities and
	// positions.
	Warnings []string
	Diags    []caplint.Diagnostic
}

// Translate extracts a CSPm implementation model from a CAPL program.
func Translate(prog *capl.Program, opts Options) (*Result, error) {
	if opts.NodeName == "" {
		return nil, fmt.Errorf("translate: NodeName must be set")
	}
	if opts.InChannel == "" || opts.OutChannel == "" {
		return nil, fmt.Errorf("translate: InChannel and OutChannel must be set")
	}
	if opts.MsgDatatype == "" {
		opts.MsgDatatype = "Msgs"
	}
	if opts.TockTime {
		opts.IncludeTimers = true
		if opts.TockMs <= 0 {
			opts.TockMs = 100
		}
	}
	if opts.Strict {
		findings := caplint.Analyze(prog, caplint.Options{File: opts.SourceFile, DB: opts.DB})
		if errs := caplint.Filter(findings, caplint.SevError); len(errs) > 0 {
			return nil, &LintError{Diags: errs}
		}
	}
	tr := &translator{prog: prog, opts: opts, msgCtor: map[string]string{}, msgByID: map[int64]string{}}
	if err := tr.collectDecls(); err != nil {
		return nil, err
	}
	if opts.TockTime {
		tr.maxDur = tr.maxTockDuration()
	}
	if err := tr.buildProcesses(); err != nil {
		return nil, err
	}
	script := tr.script()
	text, err := render(script, opts)
	if err != nil {
		return nil, fmt.Errorf("render: %w", err)
	}
	// Self-check: the rendered text must parse back.
	if _, err := cspm.Parse(text); err != nil {
		return nil, fmt.Errorf("generated CSPm does not parse (translator bug): %w\n%s", err, text)
	}
	return &Result{Script: script, Text: text, Warnings: tr.warnings, Diags: tr.diags}, nil
}

// LintError is returned by strict translation when the pre-extraction
// static analysis finds error-severity defects. Callers can print the
// individual findings.
type LintError struct {
	Diags []caplint.Diagnostic
}

func (e *LintError) Error() string {
	lines := make([]string, 0, len(e.Diags)+1)
	lines = append(lines, fmt.Sprintf("strict mode: %d error(s) found by static analysis; refusing extraction", len(e.Diags)))
	for _, d := range e.Diags {
		lines = append(lines, "  "+d.String())
	}
	return strings.Join(lines, "\n")
}

// Timer channel names used by the untimed timer abstraction.
const (
	SetTimerChan    = "setTimer"
	CancelTimerChan = "cancelTimer"
	TimeoutChan     = "timeout"
	timerType       = "Timers"
)

type translator struct {
	prog *capl.Program
	opts Options

	msgCtors []string          // datatype constructors, declaration order
	msgCtor  map[string]string // CAPL var name -> constructor
	msgByID  map[int64]string  // CAN id -> constructor
	timers   []string          // timer variable names
	timerSet map[string]bool

	defs     []cspm.ProcDef
	warnings []string
	diags    []caplint.Diagnostic
	auxCount int
	maxDur   int // largest setTimer duration in tocks (TockTime)
}

// diag records one abstraction as both a structured diagnostic (stable
// code, severity from the lint catalog, position) and a legacy warning
// string ("line N: msg" when a position is known).
func (t *translator) diag(code string, line int, format string, args ...any) {
	msg := fmt.Sprintf(format, args...)
	t.diags = append(t.diags, caplint.Diagnostic{
		Code:     code,
		Severity: caplint.SeverityOf(code),
		File:     t.opts.SourceFile,
		Line:     line,
		Msg:      msg,
	})
	if line > 0 {
		msg = fmt.Sprintf("line %d: %s", line, msg)
	}
	t.warnings = append(t.warnings, msg)
}

func (t *translator) ctorFor(varName string) string {
	if renamed, ok := t.opts.MessageRename[varName]; ok {
		return renamed
	}
	return varName
}

func (t *translator) collectDecls() error {
	seen := map[string]bool{}
	for _, d := range t.prog.MessageDecls() {
		ctor := t.ctorFor(d.Name)
		if seen[ctor] {
			return fmt.Errorf("message constructor %q generated twice", ctor)
		}
		seen[ctor] = true
		t.msgCtors = append(t.msgCtors, ctor)
		t.msgCtor[d.Name] = ctor
		if d.MsgID >= 0 {
			t.msgByID[d.MsgID] = ctor
		}
	}
	for _, extra := range t.opts.ExtraMessages {
		if !seen[extra] {
			seen[extra] = true
			t.msgCtors = append(t.msgCtors, extra)
		}
	}
	if len(t.msgCtors) == 0 {
		return fmt.Errorf("no message declarations found in variables section")
	}
	t.timerSet = map[string]bool{}
	for _, v := range t.prog.Variables {
		if v.Type.Base == capl.TypeMsTimer || v.Type.Base == capl.TypeTimer {
			t.timers = append(t.timers, v.Name)
			t.timerSet[v.Name] = true
		}
	}
	for _, extra := range t.opts.ExtraTimers {
		if !t.timerSet[extra] {
			t.timers = append(t.timers, extra)
			t.timerSet[extra] = true
		}
	}
	return nil
}

// mainName returns the name of the node's recurring main process.
func (t *translator) mainName() string {
	if len(t.prog.HandlersOf(capl.OnStart)) > 0 {
		return t.opts.NodeName + "_RUN"
	}
	return t.opts.NodeName
}

func (t *translator) buildProcesses() error {
	main := t.mainName()
	recurse := cspm.CallE{Name: main}

	var branches []cspm.ProcExpr
	for _, h := range t.prog.Handlers {
		switch h.Kind {
		case capl.OnMessage:
			branch, err := t.messageBranch(h, recurse)
			if err != nil {
				return err
			}
			branches = append(branches, branch)
		case capl.OnTimer:
			if !t.opts.IncludeTimers {
				t.diag(caplint.CodeDroppedHandler, h.Line, "on timer %s dropped (timers disabled)", h.Target)
				continue
			}
			if !t.timerSet[h.Target] {
				return fmt.Errorf("on timer %s: timer not declared in variables section", h.Target)
			}
			body, err := t.stmts(h.Body.Stmts, recurse, nil)
			if err != nil {
				return err
			}
			branches = append(branches, cspm.PrefixE{
				Chan:   TimeoutChan,
				Fields: []cspm.FieldE{{Kind: cspm.FieldDot, Expr: cspm.IdentE{Name: h.Target}}},
				Cont:   body,
			})
		case capl.OnKey, capl.OnStopMeasurement:
			t.diag(caplint.CodeDroppedHandler, h.Line, "on %s handler dropped (not part of the network model)", h.Kind)
		case capl.OnStart:
			// Handled below.
		}
	}

	var mainBody cspm.ProcExpr
	switch len(branches) {
	case 0:
		mainBody = cspm.StopE{}
		t.diag(caplint.CodeEmptyNode, 0, "node has no message or timer handlers; main process is STOP")
	case 1:
		mainBody = branches[0]
	default:
		mainBody = branches[0]
		for _, b := range branches[1:] {
			mainBody = cspm.BinProcE{Op: cspm.OpExtChoice, L: mainBody, R: b}
		}
	}

	if t.opts.TockTime {
		// Time may pass while the node is quiescent in its main state;
		// handler bodies run under the synchrony hypothesis.
		mainBody = allowTock(mainBody, cspm.CallE{Name: main})
	}

	starts := t.prog.HandlersOf(capl.OnStart)
	if len(starts) > 0 {
		// NODE = <start body> ; NODE_RUN, expressed by prefixing.
		init := cspm.ProcExpr(cspm.CallE{Name: main})
		for i := len(starts) - 1; i >= 0; i-- {
			var err error
			init, err = t.stmts(starts[i].Body.Stmts, init, nil)
			if err != nil {
				return err
			}
		}
		if t.opts.TockTime {
			init = allowTock(init, cspm.CallE{Name: t.opts.NodeName})
		}
		t.defs = append(t.defs, cspm.ProcDef{Name: t.opts.NodeName, Body: init})
	}
	t.defs = append(t.defs, cspm.ProcDef{Name: main, Body: mainBody})

	if t.opts.GenerateTimerProcess && t.opts.IncludeTimers && len(t.timers) > 0 {
		if t.opts.TockTime {
			t.defs = append(t.defs, tockTimerProcess()...)
		} else {
			t.defs = append(t.defs, timerProcess())
		}
	}
	return nil
}

// messageBranch renders one `on message` handler as a receive-prefixed
// branch of the node's main choice.
func (t *translator) messageBranch(h *capl.Handler, recurse cspm.ProcExpr) (cspm.ProcExpr, error) {
	body, err := t.stmts(h.Body.Stmts, recurse, nil)
	if err != nil {
		return nil, err
	}
	var field cspm.FieldE
	switch {
	case h.Target == "*":
		field = cspm.FieldE{Kind: cspm.FieldIn, Var: "anyMsg"}
	case h.TargetID >= 0:
		ctor, ok := t.msgByID[h.TargetID]
		if !ok {
			return nil, fmt.Errorf("on message 0x%x: no message with that identifier declared", h.TargetID)
		}
		field = cspm.FieldE{Kind: cspm.FieldDot, Expr: cspm.IdentE{Name: ctor}}
	default:
		ctor, ok := t.msgCtor[h.Target]
		if !ok {
			return nil, fmt.Errorf("on message %s: message variable not declared", h.Target)
		}
		field = cspm.FieldE{Kind: cspm.FieldDot, Expr: cspm.IdentE{Name: ctor}}
	}
	return cspm.PrefixE{Chan: t.opts.InChannel, Fields: []cspm.FieldE{field}, Cont: body}, nil
}

// timerProcess builds TIMER(t) = setTimer.t -> ARMED(t) with expiry and
// cancellation, the standard untimed timer lifecycle.
func timerProcess() cspm.ProcDef {
	tVar := cspm.IdentE{Name: "t"}
	armed := cspm.BinProcE{
		Op: cspm.OpExtChoice,
		L: cspm.PrefixE{
			Chan:   TimeoutChan,
			Fields: []cspm.FieldE{{Kind: cspm.FieldOut, Expr: tVar}},
			Cont:   cspm.CallE{Name: "TIMER", Args: []cspm.ExprE{tVar}},
		},
		R: cspm.PrefixE{
			Chan:   CancelTimerChan,
			Fields: []cspm.FieldE{{Kind: cspm.FieldOut, Expr: tVar}},
			Cont:   cspm.CallE{Name: "TIMER", Args: []cspm.ExprE{tVar}},
		},
	}
	return cspm.ProcDef{
		Name:   "TIMER",
		Params: []string{"t"},
		Body: cspm.PrefixE{
			Chan:   SetTimerChan,
			Fields: []cspm.FieldE{{Kind: cspm.FieldOut, Expr: tVar}},
			Cont:   armed,
		},
	}
}

// script assembles the declarations and definitions into a cspm.Script.
func (t *translator) script() *cspm.Script {
	s := &cspm.Script{}
	if t.opts.OmitDecls {
		for _, d := range t.defs {
			s.Decls = append(s.Decls, d)
		}
		return s
	}
	ctors := make([]cspm.CtorDecl, len(t.msgCtors))
	for i, c := range t.msgCtors {
		ctors[i] = cspm.CtorDecl{Name: c}
	}
	s.Decls = append(s.Decls, cspm.DatatypeDecl{Name: t.opts.MsgDatatype, Ctors: ctors})
	s.Decls = append(s.Decls, cspm.ChannelDecl{
		Names:  []string{t.opts.InChannel, t.opts.OutChannel},
		Fields: []cspm.TypeExpr{cspm.TypeRef{Name: t.opts.MsgDatatype}},
	})
	if t.opts.IncludeTimers && len(t.timers) > 0 {
		timerCtors := make([]cspm.CtorDecl, len(t.timers))
		for i, name := range t.timers {
			timerCtors[i] = cspm.CtorDecl{Name: name}
		}
		s.Decls = append(s.Decls, cspm.DatatypeDecl{Name: timerType, Ctors: timerCtors})
		if t.opts.TockTime {
			s.Decls = append(s.Decls, cspm.ChannelDecl{Names: []string{TockChan}})
			s.Decls = append(s.Decls, cspm.ChannelDecl{
				Names: []string{SetTimerChan},
				Fields: []cspm.TypeExpr{
					cspm.TypeRef{Name: timerType},
					cspm.TypeRange{Lo: 0, Hi: t.maxDur},
				},
			})
			s.Decls = append(s.Decls, cspm.ChannelDecl{
				Names:  []string{CancelTimerChan, TimeoutChan},
				Fields: []cspm.TypeExpr{cspm.TypeRef{Name: timerType}},
			})
		} else {
			s.Decls = append(s.Decls, cspm.ChannelDecl{
				Names:  []string{SetTimerChan, CancelTimerChan, TimeoutChan},
				Fields: []cspm.TypeExpr{cspm.TypeRef{Name: timerType}},
			})
		}
	}
	for _, d := range t.defs {
		s.Decls = append(s.Decls, d)
	}
	return s
}

// render produces the final CSPm text through the template group,
// preserving the paper's AST -> templates -> text pipeline.
func render(s *cspm.Script, opts Options) (string, error) {
	g := opts.Templates
	if g == nil {
		g = DefaultTemplates()
	}
	var datatypes, channels []string
	var defs []st.Attrs
	for _, d := range s.Decls {
		switch x := d.(type) {
		case cspm.DatatypeDecl:
			ctors := make([]string, len(x.Ctors))
			for i, c := range x.Ctors {
				ctors[i] = c.Name
			}
			line, err := g.Render("datatype", st.Attrs{"name": x.Name, "ctors": ctors})
			if err != nil {
				return "", err
			}
			datatypes = append(datatypes, line)
		case cspm.ChannelDecl:
			typeName := channelTypeString(x.Fields)
			line, err := g.Render("channel", st.Attrs{"names": x.Names, "type": typeName})
			if err != nil {
				return "", err
			}
			channels = append(channels, line)
		case cspm.ProcDef:
			name := x.Name
			if len(x.Params) > 0 {
				name += "(" + joinComma(x.Params) + ")"
			}
			defs = append(defs, st.Attrs{"name": name, "body": cspm.PrintProc(x.Body)})
		}
	}
	var asserts []string
	for _, a := range s.Asserts {
		asserts = append(asserts, printAssertion(a))
	}
	return g.Render("script", st.Attrs{
		"node":      opts.NodeName,
		"datatypes": datatypes,
		"channels":  channels,
		"defs":      defs,
		"asserts":   asserts,
	})
}

func printAssertion(a cspm.Assertion) string {
	switch a.Kind {
	case cspm.AssertTraceRef:
		return "assert " + cspm.PrintProc(a.Spec) + " [T= " + cspm.PrintProc(a.Impl)
	case cspm.AssertFailRef:
		return "assert " + cspm.PrintProc(a.Spec) + " [F= " + cspm.PrintProc(a.Impl)
	case cspm.AssertDeadlockFree:
		return "assert " + cspm.PrintProc(a.Impl) + " :[deadlock free]"
	case cspm.AssertDivergenceFree:
		return "assert " + cspm.PrintProc(a.Impl) + " :[divergence free]"
	}
	return ""
}

// channelTypeString renders a channel's dotted field signature.
func channelTypeString(fields []cspm.TypeExpr) string {
	parts := make([]string, 0, len(fields))
	for _, f := range fields {
		switch ft := f.(type) {
		case cspm.TypeRef:
			parts = append(parts, ft.Name)
		case cspm.TypeRange:
			parts = append(parts, fmt.Sprintf("{%d..%d}", ft.Lo, ft.Hi))
		}
	}
	out := ""
	for i, p := range parts {
		if i > 0 {
			out += "."
		}
		out += p
	}
	return out
}

func joinComma(xs []string) string {
	out := ""
	for i, x := range xs {
		if i > 0 {
			out += ", "
		}
		out += x
	}
	return out
}

// MessageConstructors returns the datatype constructors a program's
// message declarations map to under the options, sorted. Used by system
// composition to check two nodes agree on the message universe.
func MessageConstructors(prog *capl.Program, opts Options) []string {
	var out []string
	for _, d := range prog.MessageDecls() {
		name := d.Name
		if renamed, ok := opts.MessageRename[d.Name]; ok {
			name = renamed
		}
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}
