package translate

import (
	"fmt"

	"repro/internal/capl"
	"repro/internal/cspm"
)

// This file implements the paper's preferred approach to time (section
// VII-B): extending the model alphabet with a distinguished `tock`
// event rather than moving to continuous Timed CSP. Under
// Options.TockTime:
//
//   - a `tock` channel marks the passage of one time quantum
//     (Options.TockMs milliseconds of CAPL time);
//   - setTimer(t, ms) becomes the event setTimer.t.d where d is the
//     duration in tocks (constant-folded from the CAPL literal);
//   - the generated TIMER(t) process counts tocks down and offers
//     timeout.t exactly when the countdown reaches zero;
//   - the node's recurring states allow tock to pass freely, while
//     handler bodies execute without intervening tocks (the synchrony
//     hypothesis: event procedures are instantaneous at this
//     abstraction level).
//
// The resulting models let time-dependent ordering be checked with the
// same untimed trace refinement machinery.

// TockChan is the time-passage channel name.
const TockChan = "tock"

// tockDuration converts a CAPL millisecond literal to tocks, rounding
// up so a timer never fires early.
func (t *translator) tockDuration(ms int64) int {
	q := int64(t.opts.TockMs)
	if q <= 0 {
		q = 100
	}
	d := (ms + q - 1) / q
	if d < 1 {
		d = 1
	}
	return int(d)
}

// maxTockDuration scans the program for constant setTimer durations and
// returns the largest in tocks (minimum 1).
func (t *translator) maxTockDuration() int {
	maxDur := 1
	var walkStmt func(s capl.Stmt)
	walkExpr := func(e capl.Expr) {
		call, ok := e.(*capl.CallExpr)
		if !ok || call.Fun != "setTimer" || len(call.Args) < 2 {
			return
		}
		if ms, ok := constEval(call.Args[1]); ok {
			if d := t.tockDuration(ms); d > maxDur {
				maxDur = d
			}
		}
	}
	walkStmt = func(s capl.Stmt) {
		switch x := s.(type) {
		case *capl.BlockStmt:
			for _, st := range x.Stmts {
				walkStmt(st)
			}
		case *capl.ExprStmt:
			walkExpr(x.X)
		case *capl.IfStmt:
			walkStmt(x.Then)
			if x.Else != nil {
				walkStmt(x.Else)
			}
		case *capl.WhileStmt:
			walkStmt(x.Body)
		case *capl.DoWhileStmt:
			walkStmt(x.Body)
		case *capl.ForStmt:
			walkStmt(x.Body)
		case *capl.SwitchStmt:
			for _, c := range x.Cases {
				for _, st := range c.Stmts {
					walkStmt(st)
				}
			}
		}
	}
	for _, h := range t.prog.Handlers {
		walkStmt(h.Body)
	}
	for _, fn := range t.prog.Functions {
		walkStmt(fn.Body)
	}
	return maxDur
}

// tockSetTimerEvent builds the setTimer.t.d prefix for the tock model.
func (t *translator) tockSetTimerEvent(timer string, ms int64, cont cspm.ProcExpr) (cspm.ProcExpr, error) {
	d := t.tockDuration(ms)
	if d > t.maxDur {
		return nil, fmt.Errorf("internal: duration %d exceeds computed maximum %d", d, t.maxDur)
	}
	return cspm.PrefixE{
		Chan: SetTimerChan,
		Fields: []cspm.FieldE{
			{Kind: cspm.FieldDot, Expr: cspm.IdentE{Name: timer}},
			{Kind: cspm.FieldDot, Expr: cspm.IntE{Val: d}},
		},
		Cont: cont,
	}, nil
}

// tockTimerProcess builds the counting timer:
//
//	TIMER(t) = setTimer.t?d -> ARMED(t, d) [] tock -> TIMER(t)
//	ARMED(t, n) = if n == 0 then timeout.t -> TIMER(t)
//	              else (tock -> ARMED(t, n-1) [] cancelTimer.t -> TIMER(t))
func tockTimerProcess() []cspm.ProcDef {
	tVar := cspm.IdentE{Name: "t"}
	nVar := cspm.IdentE{Name: "n"}
	timer := cspm.ProcDef{
		Name:   "TIMER",
		Params: []string{"t"},
		Body: cspm.BinProcE{
			Op: cspm.OpExtChoice,
			L: cspm.PrefixE{
				Chan: SetTimerChan,
				Fields: []cspm.FieldE{
					{Kind: cspm.FieldOut, Expr: tVar},
					{Kind: cspm.FieldIn, Var: "d"},
				},
				Cont: cspm.CallE{Name: "ARMED", Args: []cspm.ExprE{tVar, cspm.IdentE{Name: "d"}}},
			},
			R: cspm.PrefixE{
				Chan: TockChan,
				Cont: cspm.CallE{Name: "TIMER", Args: []cspm.ExprE{tVar}},
			},
		},
	}
	armed := cspm.ProcDef{
		Name:   "ARMED",
		Params: []string{"t", "n"},
		Body: cspm.IfE{
			Cond: cspm.BinE{Op: "==", L: nVar, R: cspm.IntE{Val: 0}},
			Then: cspm.PrefixE{
				Chan:   TimeoutChan,
				Fields: []cspm.FieldE{{Kind: cspm.FieldOut, Expr: tVar}},
				Cont:   cspm.CallE{Name: "TIMER", Args: []cspm.ExprE{tVar}},
			},
			Else: cspm.BinProcE{
				Op: cspm.OpExtChoice,
				L: cspm.PrefixE{
					Chan: TockChan,
					Cont: cspm.CallE{Name: "ARMED", Args: []cspm.ExprE{
						tVar, cspm.BinE{Op: "-", L: nVar, R: cspm.IntE{Val: 1}},
					}},
				},
				R: cspm.PrefixE{
					Chan:   CancelTimerChan,
					Fields: []cspm.FieldE{{Kind: cspm.FieldOut, Expr: tVar}},
					Cont:   cspm.CallE{Name: "TIMER", Args: []cspm.ExprE{tVar}},
				},
			},
		},
	}
	return []cspm.ProcDef{timer, armed}
}

// allowTock wraps a recurring state's body so that time may pass:
// body [] tock -> <self>.
func allowTock(body cspm.ProcExpr, self cspm.ProcExpr) cspm.ProcExpr {
	return cspm.BinProcE{
		Op: cspm.OpExtChoice,
		L:  body,
		R:  cspm.PrefixE{Chan: TockChan, Cont: self},
	}
}
