package translate

import (
	"strings"
	"testing"

	"repro/internal/capl"
	"repro/internal/csp"
	"repro/internal/cspm"
)

const tockSource = `
variables
{
  message 0x1 ping;
  msTimer cycle;
}
on start { setTimer(cycle, 200); }
on timer cycle { output(ping); setTimer(cycle, 100); }
`

func translateTock(t *testing.T) *Result {
	t.Helper()
	prog, err := capl.Parse(tockSource)
	if err != nil {
		t.Fatal(err)
	}
	opts := DefaultOptions("NODE")
	opts.TockTime = true
	opts.TockMs = 100
	opts.GenerateTimerProcess = true
	res, err := Translate(prog, opts)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestTockTranslationShape(t *testing.T) {
	res := translateTock(t)
	for _, want := range []string{
		"channel tock",
		"channel setTimer : Timers.{0..2}",
		"channel cancelTimer, timeout : Timers",
		"setTimer.cycle.2", // 200 ms at 100 ms/tock
		"setTimer.cycle.1", // 100 ms
		"tock -> NODE",     // time passes in quiescent states
		"TIMER(t) = setTimer!t?d -> ARMED(t, d) [] tock -> TIMER(t)",
		"ARMED(t, n) = if (n == 0) then timeout!t -> TIMER(t)",
	} {
		if !strings.Contains(res.Text, want) {
			t.Errorf("tock model missing %q:\n%s", want, res.Text)
		}
	}
	// The generated script must evaluate.
	if _, err := cspm.Load(res.Text); err != nil {
		t.Fatalf("tock model does not evaluate: %v\n%s", err, res.Text)
	}
}

// TestTockTimingProperty checks the point of the tock extension: a
// 200 ms timer must not fire before two tocks have passed, and fires
// after exactly two.
func TestTockTimingProperty(t *testing.T) {
	res := translateTock(t)
	combined := res.Text + `
SYS = NODE [| {| setTimer, cancelTimer, timeout, tock |} |] TIMER(cycle)
`
	m, err := cspm.Load(combined)
	if err != nil {
		t.Fatal(err)
	}
	sem := csp.NewSemantics(m.Env, m.Ctx)
	set2 := csp.Ev("setTimer", csp.Sym("cycle"), csp.Int(2))
	tock := csp.Ev("tock")
	fire := csp.Ev("timeout", csp.Sym("cycle"))

	early := csp.Trace{set2, tock, fire}
	ok, err := csp.HasTrace(sem, csp.Call("SYS"), early)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("200 ms timer fired after a single tock")
	}
	onTime := csp.Trace{set2, tock, tock, fire}
	ok, err = csp.HasTrace(sem, csp.Call("SYS"), onTime)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("200 ms timer cannot fire after two tocks")
	}
	immediately := csp.Trace{set2, fire}
	ok, err = csp.HasTrace(sem, csp.Call("SYS"), immediately)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("timer fired with no time passing at all")
	}
}

// TestTockPeriodicBehaviour checks the rearm cycle: after the first
// expiry the 100 ms rearm needs exactly one more tock.
func TestTockPeriodicBehaviour(t *testing.T) {
	res := translateTock(t)
	combined := res.Text + `
SYS = NODE [| {| setTimer, cancelTimer, timeout, tock |} |] TIMER(cycle)
`
	m, err := cspm.Load(combined)
	if err != nil {
		t.Fatal(err)
	}
	sem := csp.NewSemantics(m.Env, m.Ctx)
	set2 := csp.Ev("setTimer", csp.Sym("cycle"), csp.Int(2))
	set1 := csp.Ev("setTimer", csp.Sym("cycle"), csp.Int(1))
	tock := csp.Ev("tock")
	fire := csp.Ev("timeout", csp.Sym("cycle"))
	ping := csp.Ev("rec", csp.Sym("ping"))

	cycle := csp.Trace{set2, tock, tock, fire, ping, set1, tock, fire, ping, set1}
	ok, err := csp.HasTrace(sem, csp.Call("SYS"), cycle)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Errorf("periodic behaviour missing: %s", cycle)
	}
}

func TestTockNonConstantDurationWarns(t *testing.T) {
	const src = `
variables
{
  message 0x1 ping;
  msTimer cycle;
  int period = 100;
}
on timer cycle { output(ping); setTimer(cycle, period); }
`
	prog, err := capl.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	opts := DefaultOptions("N")
	opts.TockTime = true
	res, err := Translate(prog, opts)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, w := range res.Warnings {
		if strings.Contains(w, "non-constant timer duration") {
			found = true
		}
	}
	if !found {
		t.Errorf("expected non-constant duration warning, got %v", res.Warnings)
	}
}
