// Command repolint runs the repo's custom Go static-analysis passes
// (internal/analyzers) over the module. It is the offline stand-in for
// a `go vet -vettool` driver: the build environment cannot fetch
// golang.org/x/tools, so packages are parsed with the standard
// library's go/parser and each analyzer is applied to the package
// directories it declares via AppliesTo.
//
// Usage:
//
//	repolint [-run name,name] [dir ...]
//
// Each dir argument is walked recursively (`./...` suffixes are
// accepted and equivalent); the default is the current directory. The
// exit status is 1 when any pass reports a finding, 2 on usage or
// parse errors.
package main

import (
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/analyzers"
)

func main() {
	found, err := run(os.Args[1:], os.Stdout)
	if err != nil {
		fmt.Fprintln(os.Stderr, "repolint:", err)
		os.Exit(2)
	}
	if found {
		os.Exit(1)
	}
}

// run executes the passes, reporting whether any finding was emitted.
func run(args []string, stdout io.Writer) (found bool, err error) {
	fsFlags := flag.NewFlagSet("repolint", flag.ContinueOnError)
	runList := fsFlags.String("run", "", "comma-separated analyzer names to run (default: all)")
	list := fsFlags.Bool("list", false, "list the registered analyzers and exit")
	if err := fsFlags.Parse(args); err != nil {
		return false, err
	}
	passes, err := selectPasses(*runList)
	if err != nil {
		return false, err
	}
	if *list {
		for _, a := range passes {
			fmt.Fprintf(stdout, "%s: %s\n", a.Name, a.Doc)
		}
		return false, nil
	}
	roots := fsFlags.Args()
	if len(roots) == 0 {
		roots = []string{"."}
	}
	dirs, err := packageDirs(roots)
	if err != nil {
		return false, err
	}

	fset := token.NewFileSet()
	var diags []analyzers.Diagnostic
	for _, dir := range dirs {
		pkgDir := dir.rel
		if !anyApplies(passes, pkgDir) {
			continue
		}
		files, testFiles, err := parseDir(fset, dir.abs)
		if err != nil {
			return false, err
		}
		diags = append(diags, analyzers.RunPackage(fset, pkgDir, files, testFiles, passes)...)
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i].Pos, diags[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Column < b.Column
	})
	for _, d := range diags {
		fmt.Fprintln(stdout, d)
	}
	return len(diags) > 0, nil
}

func selectPasses(runList string) ([]*analyzers.Analyzer, error) {
	all := analyzers.All()
	if runList == "" {
		return all, nil
	}
	byName := map[string]*analyzers.Analyzer{}
	for _, a := range all {
		byName[a.Name] = a
	}
	var out []*analyzers.Analyzer
	for _, name := range strings.Split(runList, ",") {
		a, ok := byName[strings.TrimSpace(name)]
		if !ok {
			return nil, fmt.Errorf("unknown analyzer %q", name)
		}
		out = append(out, a)
	}
	return out, nil
}

func anyApplies(passes []*analyzers.Analyzer, pkgDir string) bool {
	for _, a := range passes {
		if a.AppliesTo == nil || a.AppliesTo(pkgDir) {
			return true
		}
	}
	return false
}

type pkgDir struct{ abs, rel string }

// packageDirs walks the roots and returns every directory containing Go
// files. Directory paths in diagnostics and AppliesTo scoping are
// reported relative to the current working directory (the module root
// in normal use).
func packageDirs(roots []string) ([]pkgDir, error) {
	cwd, err := os.Getwd()
	if err != nil {
		return nil, err
	}
	seen := map[string]bool{}
	var out []pkgDir
	for _, root := range roots {
		root = strings.TrimSuffix(root, "...")
		root = strings.TrimSuffix(root, string(filepath.Separator))
		if root == "" || root == "."+string(filepath.Separator) {
			root = "."
		}
		err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if d.IsDir() {
				name := d.Name()
				if path != root && (strings.HasPrefix(name, ".") || name == "testdata" || name == "vendor") {
					return filepath.SkipDir
				}
				return nil
			}
			if !strings.HasSuffix(path, ".go") {
				return nil
			}
			dir := filepath.Dir(path)
			if seen[dir] {
				return nil
			}
			seen[dir] = true
			abs, err := filepath.Abs(dir)
			if err != nil {
				return err
			}
			rel, err := filepath.Rel(cwd, abs)
			if err != nil {
				rel = dir
			}
			out = append(out, pkgDir{abs: abs, rel: filepath.ToSlash(rel)})
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].rel < out[j].rel })
	return out, nil
}

// parseDir parses the directory's Go files, split into package files
// and _test.go files.
func parseDir(fset *token.FileSet, dir string) (files, testFiles []*ast.File, err error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, err
	}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.SkipObjectResolution)
		if err != nil {
			return nil, nil, err
		}
		if strings.HasSuffix(name, "_test.go") {
			testFiles = append(testFiles, f)
		} else {
			files = append(files, f)
		}
	}
	return files, testFiles, nil
}
