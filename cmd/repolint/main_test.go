package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeTree lays out a miniature module with one violation per pass and
// chdirs into it for the duration of the test.
func writeTree(t *testing.T) {
	t.Helper()
	root := t.TempDir()
	files := map[string]string{
		"cmd/tool/main.go": `package main
import "repro/internal/csp"
func build(ctx *csp.Context) { ctx.MustChannel("send") }
`,
		"internal/conformance/gen.go": `package conformance
import "math/rand"
func pick(n int) int { return rand.Intn(n) }
`,
		"internal/ota/ok.go": `package ota
import "math/rand"
func pick(n int) int { return rand.Intn(n) } // out of seededrand's scope
`,
		"internal/statestore/spill.go": `package statestore
import "os"
func dump(path string) {
	f, _ := os.Create(path)
	f.Close()
}
`,
		"internal/conformance/testdata/skip.go": `package broken !!`,
	}
	for path, src := range files {
		full := filepath.Join(root, path)
		if err := os.MkdirAll(filepath.Dir(full), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(full, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Chdir(root); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { os.Chdir(wd) })
}

func TestRunFindsSeededViolations(t *testing.T) {
	writeTree(t)
	var out strings.Builder
	found, err := run([]string{"./..."}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !found {
		t.Fatalf("no findings:\n%s", out.String())
	}
	got := out.String()
	for _, want := range []string{
		"MustChannel call is not guarded",
		"(mustrecover)",
		"rand.Intn draws from the implicitly seeded global source",
		"(seededrand)",
		"error from f.Close() on a writable file is silently discarded",
		"(closecheck)",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}
	if strings.Contains(got, "internal/ota") {
		t.Errorf("seededrand ran outside its scope:\n%s", got)
	}
	if strings.Contains(got, "testdata") {
		t.Errorf("testdata was not skipped:\n%s", got)
	}
}

func TestRunFilter(t *testing.T) {
	writeTree(t)
	var out strings.Builder
	found, err := run([]string{"-run", "seededrand", "./..."}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !found || strings.Contains(out.String(), "mustrecover") {
		t.Errorf("-run filter not applied (found=%v):\n%s", found, out.String())
	}
	if _, err := run([]string{"-run", "nosuch", "."}, &out); err == nil {
		t.Error("unknown analyzer name accepted")
	}
}

func TestRunList(t *testing.T) {
	var out strings.Builder
	found, err := run([]string{"-list"}, &out)
	if err != nil || found {
		t.Fatalf("list: found=%v err=%v", found, err)
	}
	for _, want := range []string{"mustrecover:", "seededrand:", "closecheck:"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("list output missing %q:\n%s", want, out.String())
		}
	}
}

func TestRunCleanRepo(t *testing.T) {
	// The repo itself must stay clean: this is the same invocation
	// scripts/check.sh runs in CI.
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Chdir("../.."); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { os.Chdir(wd) })
	var out strings.Builder
	found, err := run([]string{"./..."}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if found {
		t.Errorf("repo has analyzer findings:\n%s", out.String())
	}
}
