// Command learncheck closes the Learn–Check–Test loop on the OTA case
// study: an L*-style active learner drives the canoe CAPL interpreter on
// a simulated CAN bus (membership queries are seeded deterministic runs,
// equivalence queries a bounded seeded suite on a worker pool), the
// learned automaton is lowered to a CSP process, and the refinement
// checker closes the triangle — learned against extracted in both trace
// directions, plus the paper's per-protocol specs on the learned
// behaviour. A learned/extracted divergence is delta-shrunk to a
// replayable witness. Campaigns are deterministic: the same seed
// produces a byte-identical report at any worker count.
//
// Usage:
//
//	learncheck [-seed 42] [-variants all|naive,hardened,...]
//	           [-profile none|drop|corrupt|tamper|duplicate|delay]
//	           [-depth 6] [-walks 64] [-max-queries 50000]
//	           [-max-rounds 32] [-workers 0] [-max-states N]
//	           [-deadline-ms 20000] [-sim-events 100000]
//	           [-format text|json]
//	learncheck -replay FILE [-format text|json] ...
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"repro/internal/learn"
	"repro/internal/obs"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "learncheck:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("learncheck", flag.ContinueOnError)
	seed := fs.Int64("seed", 42, "campaign master seed")
	variants := fs.String("variants", "all", "comma-separated variants: naive, hardened, flawed (or all)")
	profile := fs.String("profile", "none", "fault profile the teacher runs under: none, drop, corrupt, tamper, duplicate or delay")
	depth := fs.Int("depth", 6, "random-walk depth of equivalence queries")
	walks := fs.Int("walks", 64, "random equivalence words per round")
	maxQueries := fs.Int("max-queries", 50_000, "membership-query budget per variant")
	maxRounds := fs.Int("max-rounds", 32, "equivalence-round budget per variant")
	workers := fs.Int("workers", 0, "concurrent equivalence queries (0: all cores); reports are byte-identical at any worker count")
	maxStates := fs.Int("max-states", 0, "model-state bound of the refinement checks (0: checker default)")
	deadlineMS := fs.Int64("deadline-ms", 20_000, "wall-clock bound per refinement check in milliseconds")
	simEvents := fs.Int("sim-events", 100_000, "simulator event budget per membership query")
	format := fs.String("format", "text", "report format: text or json")
	replay := fs.String("replay", "", "replay a witness JSON file instead of running a campaign")
	var obsFlags obs.Flags
	obsFlags.AddFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *format != "text" && *format != "json" {
		return fmt.Errorf("unknown format %q (want text or json)", *format)
	}
	if *depth < 1 {
		return fmt.Errorf("depth must be at least 1, got %d", *depth)
	}
	if *walks < 1 {
		return fmt.Errorf("walks must be at least 1, got %d", *walks)
	}
	if *deadlineMS <= 0 {
		return fmt.Errorf("deadline must be positive, got %dms", *deadlineMS)
	}
	if *workers < 0 {
		return fmt.Errorf("workers must be >= 0, got %d", *workers)
	}
	prof, err := learn.ParseProfile(*profile)
	if err != nil {
		return err
	}
	sel, err := parseVariants(*variants)
	if err != nil {
		return err
	}

	// Observability goes to stderr only, so reports on stdout stay
	// byte-identical with or without it.
	observer, finishObs, err := obsFlags.Build(os.Stderr)
	if err != nil {
		return err
	}

	cfg := learn.CampaignConfig{
		Seed:              *seed,
		Variants:          sel,
		Profile:           prof,
		Depth:             *depth,
		Walks:             *walks,
		MaxQueries:        *maxQueries,
		MaxRounds:         *maxRounds,
		Workers:           *workers,
		MaxStates:         *maxStates,
		MaxDuration:       time.Duration(*deadlineMS) * time.Millisecond,
		SimEventsPerQuery: *simEvents,
		Obs:               observer,
	}

	if *replay != "" {
		if err := runReplay(stdout, *replay, *format, cfg); err != nil {
			return err
		}
		return finishObs()
	}

	report, err := learn.Run(cfg)
	if err != nil {
		return err
	}
	switch *format {
	case "text":
		_, err = io.WriteString(stdout, report.Text())
	case "json":
		var data []byte
		if data, err = report.JSON(); err == nil {
			_, err = stdout.Write(data)
		}
	}
	if err != nil {
		return err
	}
	return finishObs()
}

// parseVariants resolves the -variants flag.
func parseVariants(s string) ([]learn.Variant, error) {
	if s == "" || s == "all" {
		return nil, nil // Run's default: every variant
	}
	var out []learn.Variant
	for _, part := range strings.Split(s, ",") {
		v := learn.Variant(strings.TrimSpace(part))
		switch v {
		case learn.VariantNaive, learn.VariantHardened, learn.VariantFlawed:
			out = append(out, v)
		default:
			return nil, fmt.Errorf("unknown variant %q (want naive, hardened or flawed)", part)
		}
	}
	return out, nil
}

// runReplay re-derives a recorded witness's verdicts from scratch.
func runReplay(stdout io.Writer, path, format string, cfg learn.CampaignConfig) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	w, err := learn.DecodeWitness(data)
	if err != nil {
		return err
	}
	res, err := learn.ReplayWitness(w, cfg)
	if err != nil {
		return err
	}
	if format == "json" {
		out, err := res.JSON()
		if err != nil {
			return err
		}
		_, err = stdout.Write(out)
		return err
	}
	_, err = io.WriteString(stdout, res.Text())
	return err
}
