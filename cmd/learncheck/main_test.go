package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// quick keeps test campaigns fast: fewer random walks per round.
var quick = []string{"-walks", "16", "-depth", "4"}

func TestByteIdenticalReports(t *testing.T) {
	args := append([]string{"-seed", "7"}, quick...)
	var a, b bytes.Buffer
	if err := run(args, &a); err != nil {
		t.Fatal(err)
	}
	if err := run(append(append([]string{}, args...), "-workers", "3"), &b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("worker count changed the text report")
	}

	jsonArgs := append(args, "-format", "json")
	a.Reset()
	b.Reset()
	if err := run(jsonArgs, &a); err != nil {
		t.Fatal(err)
	}
	if err := run(jsonArgs, &b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("same seed produced different JSON reports")
	}
	var decoded struct {
		Seed     float64 `json:"seed"`
		Variants []struct {
			Variant               string          `json:"variant"`
			EquivalentToExtracted bool            `json:"equivalentToExtracted"`
			Witness               json.RawMessage `json:"witness"`
			Error                 string          `json:"error"`
		} `json:"variants"`
	}
	if err := json.Unmarshal(a.Bytes(), &decoded); err != nil {
		t.Fatalf("JSON report does not parse: %v", err)
	}
	if decoded.Seed != 7 {
		t.Errorf("seed = %v, want 7", decoded.Seed)
	}
	for _, v := range decoded.Variants {
		if v.Error != "" {
			t.Fatalf("%s: %s", v.Variant, v.Error)
		}
		wantEq := v.Variant != "flawed"
		if v.EquivalentToExtracted != wantEq {
			t.Errorf("%s: equivalentToExtracted = %v, want %v", v.Variant, v.EquivalentToExtracted, wantEq)
		}
		if (v.Witness != nil) != (v.Variant == "flawed") {
			t.Errorf("%s: witness presence wrong", v.Variant)
		}
	}
}

func TestReplayRoundTrip(t *testing.T) {
	var out bytes.Buffer
	if err := run(append([]string{"-seed", "3", "-variants", "flawed", "-format", "json"}, quick...), &out); err != nil {
		t.Fatal(err)
	}
	var rep struct {
		Variants []struct {
			Witness json.RawMessage `json:"witness"`
		} `json:"variants"`
	}
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatal(err)
	}
	if len(rep.Variants) != 1 || rep.Variants[0].Witness == nil {
		t.Fatalf("no witness in report: %s", out.String())
	}
	path := filepath.Join(t.TempDir(), "witness.json")
	if err := os.WriteFile(path, rep.Variants[0].Witness, 0o644); err != nil {
		t.Fatal(err)
	}

	var text bytes.Buffer
	if err := run([]string{"-replay", path}, &text); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(text.String(), "witness reproduced") {
		t.Fatalf("witness did not reproduce:\n%s", text.String())
	}

	var js bytes.Buffer
	if err := run([]string{"-replay", path, "-format", "json"}, &js); err != nil {
		t.Fatal(err)
	}
	var res struct {
		Reproduced bool `json:"reproduced"`
	}
	if err := json.Unmarshal(js.Bytes(), &res); err != nil {
		t.Fatal(err)
	}
	if !res.Reproduced {
		t.Fatalf("JSON replay not reproduced:\n%s", js.String())
	}
}

func TestFlagValidation(t *testing.T) {
	for _, args := range [][]string{
		{"-format", "xml"},
		{"-profile", "chaos"},
		{"-variants", "naive,bogus"},
		{"-depth", "0"},
		{"-walks", "0"},
		{"-workers", "-1"},
		{"-deadline-ms", "0"},
	} {
		var out bytes.Buffer
		if err := run(args, &out); err == nil {
			t.Errorf("args %v: expected an error", args)
		}
	}
}

func TestProfileFlagRuns(t *testing.T) {
	var out bytes.Buffer
	args := append([]string{"-seed", "5", "-variants", "naive", "-profile", "drop", "-max-rounds", "4", "-format", "json"}, quick...)
	if err := run(args, &out); err != nil {
		t.Fatal(err)
	}
	var rep struct {
		Profile  string `json:"profile"`
		Variants []struct {
			Variant string `json:"variant"`
		} `json:"variants"`
	}
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Profile != "drop" {
		t.Fatalf("profile = %q, want drop", rep.Profile)
	}
	if len(rep.Variants) != 1 || rep.Variants[0].Variant != "naive" {
		t.Fatalf("variant filter not honoured: %s", out.String())
	}
}
