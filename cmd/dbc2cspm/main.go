// Command dbc2cspm converts a CAN database (.dbc) into CSPm
// declarations: the message set becomes a datatype, communication
// channels are declared over it, and (optionally) signal ranges become
// nametypes and value tables become datatypes — the CANdb model
// generator of the paper's section VIII-A.
//
// Usage:
//
//	dbc2cspm [-signals] [-channels send,rec] network.dbc
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/candb"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "dbc2cspm:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("dbc2cspm", flag.ContinueOnError)
	signals := fs.Bool("signals", false, "emit signal ranges and value tables too")
	channels := fs.String("channels", "send,rec", "comma-separated channel names")
	datatype := fs.String("datatype", "Msgs", "name of the message datatype")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("expected exactly one .dbc file, got %d", fs.NArg())
	}
	src, err := os.ReadFile(fs.Arg(0))
	if err != nil {
		return err
	}
	db, err := candb.Parse(string(src))
	if err != nil {
		return err
	}
	out := candb.GenerateCSPm(db, candb.CSPmOptions{
		MsgDatatype:    *datatype,
		Channels:       strings.Split(*channels, ","),
		IncludeSignals: *signals,
	})
	_, err = io.WriteString(stdout, out)
	return err
}
