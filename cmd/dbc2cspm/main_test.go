package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunGeneratesDeclarations(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"../../testdata/ota.dbc"}, &out); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"datatype Msgs = swInventoryReq | swInventoryRpt | applyUpdateReq | updateResultRpt",
		"channel send, rec : Msgs",
	} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q:\n%s", want, out.String())
		}
	}
}

func TestRunWithSignals(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-signals", "../../testdata/ota.dbc"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "nametype SwInventoryReq_Counter") {
		t.Errorf("output:\n%s", out.String())
	}
}

func TestRunUsage(t *testing.T) {
	var out bytes.Buffer
	if err := run(nil, &out); err == nil {
		t.Error("missing argument accepted")
	}
}
