package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunExtractsModel(t *testing.T) {
	dir := t.TempDir()
	outPath := filepath.Join(dir, "ecu.csp")
	err := run([]string{
		"-node", "ECU",
		"-rename", "swInventoryReq=reqSw,swInventoryRpt=rptSw,applyUpdateReq=reqApp,updateResultRpt=rptUpd",
		"-o", outPath,
		"../../testdata/ecu.can",
	}, os.Stdout)
	if err != nil {
		t.Fatal(err)
	}
	out, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"datatype Msgs = reqSw | rptSw | reqApp | rptUpd",
		"send.reqSw -> rec!rptSw -> ECU",
	} {
		if !strings.Contains(string(out), want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunUsage(t *testing.T) {
	if err := run(nil, os.Stdout); err == nil {
		t.Error("missing file accepted")
	}
	if err := run([]string{"/nonexistent.can"}, os.Stdout); err == nil {
		t.Error("unreadable file accepted")
	}
}

func TestParseRenames(t *testing.T) {
	got := parseRenames("a=b,c=d,,bad")
	if got["a"] != "b" || got["c"] != "d" || len(got) != 2 {
		t.Errorf("renames = %v", got)
	}
}
