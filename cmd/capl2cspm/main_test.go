package main

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/caplint"
	"repro/internal/translate"
)

func TestRunExtractsModel(t *testing.T) {
	dir := t.TempDir()
	outPath := filepath.Join(dir, "ecu.csp")
	err := run([]string{
		"-node", "ECU",
		"-rename", "swInventoryReq=reqSw,swInventoryRpt=rptSw,applyUpdateReq=reqApp,updateResultRpt=rptUpd",
		"-o", outPath,
		"../../testdata/ecu.can",
	}, os.Stdout)
	if err != nil {
		t.Fatal(err)
	}
	out, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"datatype Msgs = reqSw | rptSw | reqApp | rptUpd",
		"send.reqSw -> rec!rptSw -> ECU",
	} {
		if !strings.Contains(string(out), want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunUsage(t *testing.T) {
	if err := run(nil, os.Stdout); err == nil {
		t.Error("missing file accepted")
	}
	if err := run([]string{"/nonexistent.can"}, os.Stdout); err == nil {
		t.Error("unreadable file accepted")
	}
}

func TestParseRenames(t *testing.T) {
	got := parseRenames("a=b,c=d,,bad")
	if got["a"] != "b" || got["c"] != "d" || len(got) != 2 {
		t.Errorf("renames = %v", got)
	}
}

func TestRunStrictRefusesFlawedInput(t *testing.T) {
	err := run([]string{
		"-node", "Gateway",
		"-strict",
		"-dbc", "../../testdata/ota.dbc",
		"../../examples/caplcheck/flawed_gateway.can",
	}, io.Discard)
	if err == nil {
		t.Fatal("strict extraction accepted seeded defects")
	}
	var lintErr *translate.LintError
	if !errors.As(err, &lintErr) {
		t.Fatalf("err = %T (%v), want *translate.LintError", err, err)
	}
	codes := map[string]bool{}
	for _, d := range lintErr.Diags {
		codes[d.Code] = true
	}
	for _, want := range []string{caplint.CodeUnknownFunc, caplint.CodeBadOutputArg, caplint.CodeDBSignalWidth} {
		if !codes[want] {
			t.Errorf("strict refusal missing code %s: %v", want, codes)
		}
	}
}

func TestRunStrictIsByteIdenticalOnCleanInput(t *testing.T) {
	var plain, strict strings.Builder
	if err := run([]string{"-node", "VMG", "../../testdata/ecu.can"}, &plain); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-node", "VMG", "-strict", "-dbc", "../../testdata/ota.dbc",
		"../../testdata/ecu.can"}, &strict); err != nil {
		t.Fatal(err)
	}
	if plain.String() != strict.String() {
		t.Errorf("strict output differs from plain output on clean input:\n--- plain ---\n%s\n--- strict ---\n%s",
			plain.String(), strict.String())
	}
}
