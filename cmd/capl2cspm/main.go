// Command capl2cspm is the model extractor of the paper's Figure 1: it
// translates a CAPL network-node program into a CSPm implementation
// model for the fdrlite refinement checker.
//
// Usage:
//
//	capl2cspm -node ECU [-in send] [-out rec] [-rename a=b,c=d] [-strict] [-dbc db.dbc] [-o file.csp] node.can
//
// With -strict the caplint static analyzer runs before extraction and
// any error-severity finding (unknown functions, undeclared messages,
// signal-width violations, ...) aborts the translation; the generated
// text on clean input is byte-identical to a non-strict run.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/candb"
	"repro/internal/capl"
	"repro/internal/translate"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "capl2cspm:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("capl2cspm", flag.ContinueOnError)
	node := fs.String("node", "NODE", "name of the generated node process")
	in := fs.String("in", "send", "channel carrying messages the node receives")
	out := fs.String("out", "rec", "channel carrying messages the node emits")
	rename := fs.String("rename", "", "comma-separated CAPLname=ctor message renames")
	timers := fs.Bool("timers", true, "translate timer interactions into events")
	timerProc := fs.Bool("timer-process", false, "also emit the TIMER(t) lifecycle process")
	omitDecls := fs.Bool("omit-decls", false, "emit process definitions only (for composition)")
	strict := fs.Bool("strict", false, "run the static analyzer first; refuse extraction on error-severity findings")
	dbcPath := fs.String("dbc", "", "CAN database for the strict cross-check")
	output := fs.String("o", "", "output file (default stdout)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("expected exactly one CAPL source file, got %d", fs.NArg())
	}
	src, err := os.ReadFile(fs.Arg(0))
	if err != nil {
		return err
	}
	prog, err := capl.Parse(string(src))
	if err != nil {
		return err
	}
	var db *candb.Database
	if *dbcPath != "" {
		dbSrc, err := os.ReadFile(*dbcPath)
		if err != nil {
			return err
		}
		db, err = candb.Parse(string(dbSrc))
		if err != nil {
			return err
		}
	}
	opts := translate.Options{
		NodeName:             *node,
		InChannel:            *in,
		OutChannel:           *out,
		MessageRename:        parseRenames(*rename),
		IncludeTimers:        *timers,
		GenerateTimerProcess: *timerProc,
		OmitDecls:            *omitDecls,
		SourceFile:           fs.Arg(0),
		Strict:               *strict,
		DB:                   db,
	}
	res, err := translate.Translate(prog, opts)
	if err != nil {
		return err
	}
	for _, d := range res.Diags {
		fmt.Fprintln(os.Stderr, "warning:", d)
	}
	if *output == "" {
		_, err = io.WriteString(stdout, res.Text)
		return err
	}
	return os.WriteFile(*output, []byte(res.Text), 0o644)
}

func parseRenames(spec string) map[string]string {
	out := map[string]string{}
	for _, pair := range strings.Split(spec, ",") {
		if pair == "" {
			continue
		}
		if eq := strings.IndexByte(pair, '='); eq > 0 {
			out[pair[:eq]] = pair[eq+1:]
		}
	}
	return out
}
