// Command caplgen runs the generative differential soak: it generates
// seeded well-typed CAPL programs and pushes each one through the full
// pipeline — lint + typecheck, CSPm extraction, model exploration, bus
// simulation and trace-membership conformance. The report is
// deterministic in the seed (no timestamps, no wall-clock), so a
// fixed-seed run is byte-comparable against the committed baseline:
//
//	caplgen -seed 1 -n 200 -o report.json
//	cmp report.json testdata/caplgen_baseline.json
//
// Exit status: 0 when every program completes with verdict "ok", 1
// when any program fails, 2 on usage errors.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/caplgen"
)

func main() {
	var (
		seed      = flag.Int64("seed", 1, "master seed for the program generator")
		n         = flag.Int("n", 200, "number of generated programs")
		maxStates = flag.Int("max-states", 50_000, "state bound for exploration and trace membership")
		simEvents = flag.Int("sim-events", 100_000, "bus-simulation event budget per program")
		noShrink  = flag.Bool("no-shrink", false, "disable structural shrinking of failing programs")
		out       = flag.String("o", "", "write the JSON report to this file (default stdout)")
		quiet     = flag.Bool("q", false, "suppress the summary line on stderr")
	)
	flag.Parse()
	if *n <= 0 {
		fmt.Fprintln(os.Stderr, "caplgen: -n must be positive")
		os.Exit(2)
	}

	rep := caplgen.Run(caplgen.Config{
		Seed:         *seed,
		Programs:     *n,
		MaxStates:    *maxStates,
		MaxSimEvents: *simEvents,
		Shrink:       !*noShrink,
	})
	data, err := rep.JSON()
	if err != nil {
		fmt.Fprintf(os.Stderr, "caplgen: %v\n", err)
		os.Exit(2)
	}
	if *out == "" {
		os.Stdout.Write(data)
	} else if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "caplgen: %v\n", err)
		os.Exit(2)
	}
	if !*quiet {
		fmt.Fprintln(os.Stderr, rep.Summary())
	}
	if rep.Failures > 0 {
		os.Exit(1)
	}
}
