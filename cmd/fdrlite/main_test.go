package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunOnCaseStudyScript(t *testing.T) {
	var out bytes.Buffer
	code, err := run([]string{"../../testdata/ota.csp"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if code != 0 {
		t.Fatalf("exit code = %d\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "4 assertion(s), 0 failed") {
		t.Errorf("output:\n%s", out.String())
	}
}

func TestRunReportsFailures(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "bad.csp")
	src := `
channel a, b
SPEC = a -> SPEC
IMPL = a -> b -> IMPL
assert SPEC [T= IMPL
`
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	code, err := run([]string{path}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if code != 1 {
		t.Errorf("exit code = %d, want 1\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "FAILED") {
		t.Errorf("output:\n%s", out.String())
	}
}

func TestRunUsageErrors(t *testing.T) {
	var out bytes.Buffer
	if code, err := run(nil, &out); err == nil || code != 2 {
		t.Errorf("missing file accepted: code=%d err=%v", code, err)
	}
	if code, err := run([]string{"/nonexistent.csp"}, &out); err == nil || code != 2 {
		t.Errorf("unreadable file accepted: code=%d err=%v", code, err)
	}
}

func TestDotExport(t *testing.T) {
	dir := t.TempDir()
	dot := filepath.Join(dir, "sys.dot")
	var out bytes.Buffer
	code, err := run([]string{"-dot", dot, "-graph", "SYSTEM", "../../testdata/ota.csp"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if code != 0 {
		t.Fatalf("exit = %d\n%s", code, out.String())
	}
	data, err := os.ReadFile(dot)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "digraph \"SYSTEM\"") {
		t.Errorf("dot output:\n%s", data)
	}
	if _, err := run([]string{"-dot", dot, "../../testdata/ota.csp"}, &out); err == nil {
		t.Error("-dot without -graph accepted")
	}
}
