// Command fdrlite is the refinement checker of the paper's Figure 1: it
// loads a CSPm script, evaluates it, runs every assertion (trace and
// failures refinement, deadlock and divergence freedom) and reports
// pass/fail with counterexample traces. It exits non-zero if any
// assertion fails.
//
// Usage:
//
//	fdrlite [-max-states N] [-dot out.dot -graph PROC] model.csp
//
// With -dot and -graph, the named process's labelled transition system
// is additionally exported in Graphviz DOT format (FDR's process-graph
// visualisation).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/csp"
	"repro/internal/cspm"
	"repro/internal/fdr"
	"repro/internal/lts"
	"repro/internal/obs"
)

func main() {
	code, err := run(os.Args[1:], os.Stdout)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fdrlite:", err)
		os.Exit(2)
	}
	os.Exit(code)
}

func run(args []string, stdout io.Writer) (int, error) {
	fs := flag.NewFlagSet("fdrlite", flag.ContinueOnError)
	maxStates := fs.Int("max-states", 0, "state limit per exploration (0 = default)")
	dotFile := fs.String("dot", "", "write the -graph process's LTS as Graphviz DOT to this file")
	graph := fs.String("graph", "", "process name to export with -dot")
	var obsFlags obs.Flags
	obsFlags.AddFlags(fs)
	if err := fs.Parse(args); err != nil {
		return 2, err
	}
	if fs.NArg() != 1 {
		return 2, fmt.Errorf("expected exactly one CSPm file, got %d", fs.NArg())
	}
	src, err := os.ReadFile(fs.Arg(0))
	if err != nil {
		return 2, err
	}
	model, err := cspm.Load(string(src))
	if err != nil {
		return 2, err
	}
	// Observability goes to stderr only, so assertion output on stdout
	// stays byte-identical with or without it.
	observer, finishObs, err := obsFlags.Build(os.Stderr)
	if err != nil {
		return 2, err
	}
	if *dotFile != "" {
		if *graph == "" {
			return 2, fmt.Errorf("-dot requires -graph <process name>")
		}
		sem := csp.NewSemantics(model.Env, model.Ctx)
		l, err := lts.Explore(sem, csp.Call(*graph), lts.Options{MaxStates: *maxStates, Obs: observer})
		if err != nil {
			return 2, fmt.Errorf("explore %s: %w", *graph, err)
		}
		dot := l.ToDOT(lts.DOTOptions{Name: *graph, MaxStates: 400})
		if err := os.WriteFile(*dotFile, []byte(dot), 0o644); err != nil {
			return 2, err
		}
		fmt.Fprintf(stdout, "wrote %s (%d states, %d transitions)\n",
			*dotFile, l.NumStates(), l.NumTransitions())
	}
	if len(model.Asserts) == 0 {
		fmt.Fprintln(stdout, "no assertions in script")
		return 0, finishObs()
	}
	results, err := fdr.RunAllBudget(model, fdr.Budget{MaxStates: *maxStates, Obs: observer})
	if err != nil {
		return 2, err
	}
	failures := 0
	for _, r := range results {
		fmt.Fprintln(stdout, r)
		if !r.Result.Holds {
			failures++
		}
	}
	fmt.Fprintf(stdout, "%d assertion(s), %d failed\n", len(results), failures)
	if err := finishObs(); err != nil {
		return 2, err
	}
	if failures > 0 {
		return 1, nil
	}
	return 0, nil
}
