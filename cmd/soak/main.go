// Command soak runs the conformance soak campaign: seeded randomized
// perturbation schedules (timer jitter, frame loss, duplication, delayed
// replay) executed on the simulated OTA network, with every observed bus
// trace checked for membership in the extracted CSP model composed with
// a bounded-fault channel. Diverging schedules are shrunk to a minimal
// replayable reproduction. Campaigns are deterministic: the same seed
// always produces a byte-identical report.
//
// Usage:
//
//	soak [-seed 42] [-n 4] [-variants all|naive,hardened,...]
//	     [-horizon-ms 50] [-format text|json] [-max-states N]
//	     [-deadline-ms 20000] [-sim-events 300000] [-no-shrink]
//	     [-workers 0]
//	soak -replay FILE [-format text|json] ...
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"repro/internal/canbus"
	"repro/internal/conformance"
	"repro/internal/obs"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "soak:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("soak", flag.ContinueOnError)
	seed := fs.Int64("seed", 42, "campaign master seed")
	n := fs.Int("n", 4, "schedules per variant")
	variants := fs.String("variants", "all", "comma-separated variants: naive, hardened, flawed (or all)")
	horizonMS := fs.Int64("horizon-ms", 50, "simulated horizon per schedule in milliseconds")
	format := fs.String("format", "text", "report format: text or json")
	maxStates := fs.Int("max-states", 0, "model-state bound of the trace check (0: checker default)")
	deadlineMS := fs.Int64("deadline-ms", 20_000, "wall-clock watchdog per schedule in milliseconds")
	simEvents := fs.Int("sim-events", 300_000, "simulator event budget per schedule")
	noShrink := fs.Bool("no-shrink", false, "skip minimization of diverging schedules")
	workers := fs.Int("workers", 0, "concurrent schedules (0: all cores); reports are byte-identical at any worker count")
	replay := fs.String("replay", "", "replay a schedule JSON file instead of running a campaign")
	var obsFlags obs.Flags
	obsFlags.AddFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *format != "text" && *format != "json" {
		return fmt.Errorf("unknown format %q (want text or json)", *format)
	}
	if *horizonMS <= 0 {
		return fmt.Errorf("horizon must be positive, got %dms", *horizonMS)
	}
	if *n < 1 {
		return fmt.Errorf("schedules per variant must be at least 1, got %d", *n)
	}
	if *deadlineMS <= 0 {
		return fmt.Errorf("deadline must be positive, got %dms", *deadlineMS)
	}
	if *workers < 0 {
		return fmt.Errorf("workers must be >= 0, got %d", *workers)
	}

	// Observability goes to stderr only, so reports on stdout stay
	// byte-identical with or without it.
	observer, finishObs, err := obsFlags.Build(os.Stderr)
	if err != nil {
		return err
	}

	if *replay != "" {
		if err := runReplay(stdout, *replay, *format, *maxStates, *deadlineMS, *simEvents, observer); err != nil {
			return err
		}
		return finishObs()
	}

	sel, err := parseVariants(*variants)
	if err != nil {
		return err
	}
	cfg := conformance.Config{
		Seed:                *seed,
		SchedulesPerVariant: *n,
		Variants:            sel,
		Gen:                 conformance.GenConfig{Horizon: canbus.Time(*horizonMS) * canbus.Millisecond},
		MaxStates:           *maxStates,
		MaxDuration:         time.Duration(*deadlineMS) * time.Millisecond,
		MaxSimEvents:        *simEvents,
		NoShrink:            *noShrink,
		Workers:             *workers,
		Obs:                 observer,
	}
	report, err := conformance.Run(cfg)
	if err != nil {
		return err
	}
	switch *format {
	case "text":
		_, err = io.WriteString(stdout, report.Text())
	case "json":
		var data []byte
		if data, err = report.JSON(); err == nil {
			_, err = stdout.Write(append(data, '\n'))
		}
	}
	if err != nil {
		return err
	}
	return finishObs()
}

// parseVariants resolves the -variants flag.
func parseVariants(s string) ([]conformance.Variant, error) {
	if s == "" || s == "all" {
		return nil, nil // Run's default: every variant
	}
	var out []conformance.Variant
	for _, part := range strings.Split(s, ",") {
		v := conformance.Variant(strings.TrimSpace(part))
		switch v {
		case conformance.VariantNaive, conformance.VariantHardened, conformance.VariantFlawed:
			out = append(out, v)
		default:
			return nil, fmt.Errorf("unknown variant %q (want naive, hardened or flawed)", part)
		}
	}
	return out, nil
}

// runReplay re-executes a single schedule from its JSON reproduction
// file and prints the verdict.
func runReplay(stdout io.Writer, path, format string, maxStates int, deadlineMS int64, simEvents int, observer *obs.Observer) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	s, err := conformance.DecodeSchedule(data)
	if err != nil {
		return err
	}
	r, err := conformance.NewRunner()
	if err != nil {
		return err
	}
	r.MaxStates = maxStates
	r.MaxDuration = time.Duration(deadlineMS) * time.Millisecond
	r.MaxSimEvents = simEvents
	r.Obs = observer
	v := r.RunSchedule(s)
	v.Name = "replay"

	if format == "json" {
		out, err := jsonVerdict(v)
		if err != nil {
			return err
		}
		_, err = stdout.Write(out)
		return err
	}
	fmt.Fprintf(stdout, "replay %s: %s\n", s, v.Kind)
	if len(v.AppliedOps) > 0 {
		fmt.Fprintf(stdout, "applied: %s\n", strings.Join(v.AppliedOps, " "))
	}
	if v.Detail != "" {
		fmt.Fprintf(stdout, "detail: %s\n", v.Detail)
	}
	if v.Divergence != nil {
		fmt.Fprintf(stdout, "diverges at event %d: %s not in model (allowed: %s)\n",
			v.Divergence.FailedAt, v.Divergence.BadEvent, strings.Join(v.Divergence.Allowed, ", "))
		if len(v.Divergence.Context) > 0 {
			fmt.Fprintf(stdout, "context: %s\n", strings.Join(v.Divergence.Context, " "))
		}
	}
	return nil
}

func jsonVerdict(v conformance.Verdict) ([]byte, error) {
	data, err := v.JSON()
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}
