package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// quick are the flags keeping test campaigns fast: short horizon, one
// schedule per variant.
var quick = []string{"-n", "1", "-horizon-ms", "12"}

func TestByteIdenticalReports(t *testing.T) {
	args := append([]string{"-seed", "7"}, quick...)
	var a, b bytes.Buffer
	if err := run(args, &a); err != nil {
		t.Fatal(err)
	}
	if err := run(args, &b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("same seed produced different text reports")
	}

	jsonArgs := append(args, "-format", "json")
	a.Reset()
	b.Reset()
	if err := run(jsonArgs, &a); err != nil {
		t.Fatal(err)
	}
	if err := run(jsonArgs, &b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("same seed produced different JSON reports")
	}
	var decoded map[string]any
	if err := json.Unmarshal(a.Bytes(), &decoded); err != nil {
		t.Fatalf("JSON report does not parse: %v", err)
	}
	if decoded["masterSeed"] != float64(7) {
		t.Errorf("masterSeed = %v, want 7", decoded["masterSeed"])
	}
	if decoded["diverges"] == float64(0) {
		t.Error("campaign found no divergence (the flawed variant should diverge)")
	}
}

func TestVariantFilter(t *testing.T) {
	var out bytes.Buffer
	if err := run(append([]string{"-variants", "naive,flawed", "-format", "json"}, quick...), &out); err != nil {
		t.Fatal(err)
	}
	var rep struct {
		Schedules int `json:"schedules"`
		Verdicts  []struct {
			Name string `json:"name"`
		} `json:"verdicts"`
	}
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Schedules != 2 {
		t.Fatalf("schedules = %d, want 2", rep.Schedules)
	}
	for _, v := range rep.Verdicts {
		if strings.HasPrefix(v.Name, "hardened") {
			t.Fatalf("hardened schedule %q ran despite filter", v.Name)
		}
	}
}

func TestReplayRoundTrip(t *testing.T) {
	// Run a campaign, extract the shrunk flawed reproduction, replay it.
	var out bytes.Buffer
	if err := run(append([]string{"-variants", "flawed", "-format", "json"}, quick...), &out); err != nil {
		t.Fatal(err)
	}
	var rep struct {
		Verdicts []struct {
			Divergence *struct {
				Shrunk json.RawMessage `json:"shrunk"`
			} `json:"divergence"`
		} `json:"verdicts"`
	}
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatal(err)
	}
	if len(rep.Verdicts) == 0 || rep.Verdicts[0].Divergence == nil || rep.Verdicts[0].Divergence.Shrunk == nil {
		t.Fatalf("no shrunk reproduction in campaign output:\n%s", out.String())
	}
	path := filepath.Join(t.TempDir(), "repro.json")
	if err := os.WriteFile(path, rep.Verdicts[0].Divergence.Shrunk, 0o644); err != nil {
		t.Fatal(err)
	}

	var replay bytes.Buffer
	if err := run([]string{"-replay", path}, &replay); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(replay.String(), "diverges") {
		t.Fatalf("replay did not reproduce the divergence:\n%s", replay.String())
	}

	replay.Reset()
	if err := run([]string{"-replay", path, "-format", "json"}, &replay); err != nil {
		t.Fatal(err)
	}
	var verdict struct {
		Verdict string `json:"verdict"`
	}
	if err := json.Unmarshal(replay.Bytes(), &verdict); err != nil {
		t.Fatalf("replay JSON does not parse: %v\n%s", err, replay.String())
	}
	if verdict.Verdict != "diverges" {
		t.Fatalf("replay verdict = %q, want diverges", verdict.Verdict)
	}
}

func TestFlagValidation(t *testing.T) {
	bad := [][]string{
		{"-format", "xml"},
		{"-horizon-ms", "0"},
		{"-n", "0"},
		{"-deadline-ms", "-5"},
		{"-variants", "turbo"},
		{"-replay", "/nonexistent/schedule.json"},
	}
	for _, args := range bad {
		var out bytes.Buffer
		if err := run(args, &out); err == nil {
			t.Errorf("args %v accepted, want error", args)
		}
	}
}

func TestReplayRejectsMalformedFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(path, []byte(`{"variant":"naive","horizonUs":-1}`), 0o644); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := run([]string{"-replay", path}, &out); err == nil {
		t.Error("malformed replay file accepted, want error")
	}
}
