// Command fdrserve is the checking-as-a-service daemon: a long-lived
// HTTP/JSON server that accepts CSPm models plus assertions and runs
// them through the refinement checker on a worker pool, hardened for
// weeks-long operation under untrusted, bursty traffic.
//
// Usage:
//
//	fdrserve [-addr :8080] [-check-workers N] [-queue N] [-max-states N]
//	         [-max-duration 30s] [-max-body 1048576]
//	         [-cache-states N] [-cache-entries N]
//
// Endpoints:
//
//	POST /v1/check    {"cspm": "...", "budget": {...}} -> per-assertion verdicts
//	POST /v1/jobs     submit the same request as a detached job -> {"id", "state"}
//	GET  /v1/jobs/ID  poll a job; state "done" carries the check response
//	GET  /healthz     liveness (200 while the process is up)
//	GET  /readyz      readiness (503 once draining)
//	GET  /metrics     observability snapshot (text form)
//
// Overload is rejected with 429 + Retry-After instead of queue
// collapse; a SIGTERM/SIGINT drains in-flight checks, rejects new
// work, flushes the observability sinks and exits 0.
//
// With -data-dir set, jobs are durable: records persist with atomic
// writes, explorations checkpoint per BFS level, and a daemon killed
// outright (SIGKILL, OOM) re-enqueues its unfinished jobs at the next
// boot and resumes them from their checkpoints — the eventual verdicts
// are byte-identical to an uninterrupted run. -soft-mem bounds resident
// exploration memory by spilling visited state to disk; -max-mem turns
// runaway checks into structured budget:memory verdicts.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/obs"
	"repro/internal/serve"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, nil); err != nil {
		fmt.Fprintln(os.Stderr, "fdrserve:", err)
		os.Exit(1)
	}
}

// run starts the daemon and blocks until a shutdown signal arrives and
// the drain completes. ready, when non-nil, receives the bound address
// once the listener is up (the test hook).
func run(args []string, stdout io.Writer, ready chan<- string) error {
	fs := flag.NewFlagSet("fdrserve", flag.ContinueOnError)
	addr := fs.String("addr", ":8080", "listen address")
	checkWorkers := fs.Int("check-workers", 0, "concurrent checks (0 = GOMAXPROCS)")
	queue := fs.Int("queue", 64, "admission queue length past the worker slots")
	maxStates := fs.Int("max-states", 0, "per-request state cap per exploration (0 = lts default)")
	maxDuration := fs.Duration("max-duration", 30*time.Second, "per-request wall-clock cap")
	maxBody := fs.Int64("max-body", 1<<20, "request body cap in bytes")
	cacheStates := fs.Int("cache-states", 0, "model-store state watermark (0 = 8x max-states)")
	cacheEntries := fs.Int("cache-entries", 0, "model-store entry watermark (0 = unbounded entries)")
	drainTimeout := fs.Duration("drain-timeout", 30*time.Second, "max wait for in-flight checks on shutdown")
	exploreWorkers := fs.Int("explore-workers", 1, "lts exploration parallelism per check")
	dataDir := fs.String("data-dir", "", "durable state directory: job records, checkpoints and spill shards (empty = jobs are memory-only)")
	softMem := fs.Int64("soft-mem", 0, "per-exploration soft memory watermark in bytes; past it visited state spills to disk (0 = never spill)")
	maxMem := fs.Int64("max-mem", 0, "per-exploration hard memory watermark in bytes; past it the check degrades to a budget:memory verdict (0 = unbounded)")
	checkpointLevels := fs.Int("checkpoint-levels", 0, "exploration snapshot cadence in BFS levels for durable jobs (0 = every level)")
	chaos := fs.Bool("chaos", false, "honour X-Chaos-Panic fault-injection headers (testing only)")
	var obsFlags obs.Flags
	obsFlags.AddFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 0 {
		return fmt.Errorf("unexpected arguments: %v", fs.Args())
	}
	// The daemon always runs with metrics enabled — /metrics is part of
	// the API — so Build's nil-observer disabled path is only taken when
	// no flags ask for extra sinks; then a plain enabled observer is
	// used.
	observer, finishObs, err := obsFlags.Build(os.Stderr)
	if err != nil {
		return err
	}
	if observer == nil {
		observer = obs.New()
		finishObs = func() error { return nil }
	}

	srv := serve.New(serve.Config{
		Workers:        *checkWorkers,
		MaxQueue:       *queue,
		MaxBodyBytes:   *maxBody,
		MaxStates:      *maxStates,
		MaxDuration:    *maxDuration,
		ExploreWorkers: *exploreWorkers,
		CacheEntries:   *cacheEntries,
		CacheStates:    *cacheStates,
		Obs:            observer,
		EnableChaos:    *chaos,

		DataDir:               *dataDir,
		SoftMemBytes:          *softMem,
		MaxMemBytes:           *maxMem,
		CheckpointEveryLevels: *checkpointLevels,
	})

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	httpSrv := &http.Server{
		Handler: srv.Handler(),
		// Slow-loris defence: a client must deliver its headers and body
		// promptly or lose the connection; checks themselves are bounded
		// by the per-request budget, so the write timeout covers the
		// response on top of it.
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      *maxDuration + 30*time.Second,
	}
	fmt.Fprintf(stdout, "fdrserve: listening on %s (workers=%d queue=%d max-duration=%v)\n",
		ln.Addr(), srv.Workers(), *queue, *maxDuration)
	if ready != nil {
		ready <- ln.Addr().String()
	}

	serveErr := make(chan error, 1)
	go func() {
		defer func() {
			// The accept loop must never take the process down.
			if r := recover(); r != nil {
				serveErr <- fmt.Errorf("http serve panicked: %v", r)
			}
		}()
		serveErr <- httpSrv.Serve(ln)
	}()

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, syscall.SIGTERM, syscall.SIGINT)
	defer signal.Stop(sigCh)

	select {
	case sig := <-sigCh:
		fmt.Fprintf(stdout, "fdrserve: %v received, draining\n", sig)
	case err := <-serveErr:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			return err
		}
	}

	// Graceful shutdown: flip readiness, reject new checks, wait for
	// in-flight work, then close the listener and flush the obs sinks.
	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	drainErr := srv.Drain(ctx)
	if err := httpSrv.Shutdown(ctx); err != nil && drainErr == nil {
		drainErr = err
	}
	if err := finishObs(); err != nil && drainErr == nil {
		drainErr = err
	}
	if drainErr != nil {
		return drainErr
	}
	fmt.Fprintln(stdout, "fdrserve: drained, exiting")
	return nil
}
