package main

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"syscall"
	"testing"
	"time"

	"repro/internal/leakcheck"
	"repro/internal/serve"
	"repro/internal/serve/client"
)

// TestServeCheckAndGracefulShutdown boots the daemon on an ephemeral
// port, runs a check through the retrying client, then delivers SIGTERM
// and verifies the drain completes with a clean exit.
func TestServeCheckAndGracefulShutdown(t *testing.T) {
	leakcheck.Check(t)
	var out bytes.Buffer
	ready := make(chan string, 1)
	done := make(chan error, 1)
	go func() {
		done <- run([]string{"-addr", "127.0.0.1:0", "-drain-timeout", "10s"}, &out, ready)
	}()
	var addr string
	select {
	case addr = <-ready:
	case err := <-done:
		t.Fatalf("daemon exited before ready: %v\n%s", err, out.String())
	case <-time.After(10 * time.Second):
		t.Fatal("daemon never became ready")
	}
	base := "http://" + addr

	for _, ep := range []string{"/healthz", "/readyz", "/metrics"} {
		resp, err := http.Get(base + ep)
		if err != nil {
			t.Fatalf("GET %s: %v", ep, err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("GET %s = %d, want 200", ep, resp.StatusCode)
		}
	}

	c := client.New(base)
	resp, err := c.Check(context.Background(), serve.CheckRequest{
		CSPM: "channel a\nP = a -> P\nassert P :[deadlock free]\n",
	})
	if err != nil {
		t.Fatalf("check: %v", err)
	}
	if len(resp.Results) != 1 || !resp.Results[0].Holds {
		t.Fatalf("results = %+v", resp.Results)
	}

	// SIGTERM to our own process: run's signal handler catches it, the
	// daemon drains and run returns nil.
	if err := syscall.Kill(syscall.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run returned %v\n%s", err, out.String())
		}
	case <-time.After(15 * time.Second):
		t.Fatal("daemon did not drain after SIGTERM")
	}
	for _, want := range []string{"listening on", "draining", "drained, exiting"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q:\n%s", want, out.String())
		}
	}
}

func TestRejectsUnexpectedArguments(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"stray"}, &out, nil); err == nil {
		t.Fatal("stray argument accepted")
	}
}

// TestBudgetJSONShape pins the wire names of the budget knobs the
// README documents.
func TestBudgetJSONShape(t *testing.T) {
	b, err := json.Marshal(serve.CheckRequest{
		CSPM:   "P = STOP",
		Budget: &serve.BudgetSpec{MaxStates: 1, MaxProductStates: 2, MaxSteps: 3, MaxDurationMs: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"cspm"`, `"maxStates"`, `"maxProductStates"`, `"maxSteps"`, `"maxDurationMs"`} {
		if !strings.Contains(string(b), want) {
			t.Errorf("request JSON missing %s: %s", want, b)
		}
	}
}
