package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"runtime"
	"testing"
)

// TestRunEmitsWellFormedJSON runs a one-iteration smoke of the cheap
// benchmarks and validates the BENCH_refine.json shape.
func TestRunEmitsWellFormedJSON(t *testing.T) {
	out := filepath.Join(t.TempDir(), "BENCH_refine.json")
	var stdout bytes.Buffer
	if err := run(out, "^Refines/", "1x", &stdout); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var doc Output
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, data)
	}
	if doc.GoMaxProcs != runtime.GOMAXPROCS(0) {
		t.Errorf("goMaxProcs = %d, want %d", doc.GoMaxProcs, runtime.GOMAXPROCS(0))
	}
	if doc.GoVersion == "" {
		t.Error("goVersion missing")
	}
	want := map[string]bool{"Refines/cold": true, "Refines/cached": true}
	if len(doc.Benchmarks) != len(want) {
		t.Fatalf("got %d benchmarks, want %d: %+v", len(doc.Benchmarks), len(want), doc.Benchmarks)
	}
	for _, m := range doc.Benchmarks {
		if !want[m.Name] {
			t.Errorf("unexpected benchmark %q", m.Name)
		}
		if m.Iterations < 1 || m.NsPerOp <= 0 {
			t.Errorf("%s: implausible measurement %+v", m.Name, m)
		}
	}
}

func TestRunRejectsUnmatchedPattern(t *testing.T) {
	var stdout bytes.Buffer
	if err := run("-", "^NoSuchBenchmark$", "1x", &stdout); err == nil {
		t.Fatal("pattern matching nothing should be an error")
	}
}

func TestRunRejectsBadPattern(t *testing.T) {
	var stdout bytes.Buffer
	if err := run("-", "(", "1x", &stdout); err == nil {
		t.Fatal("invalid regexp accepted")
	}
}
