package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"

	"repro/internal/obs"
)

// TestRunEmitsWellFormedJSON runs a one-iteration smoke of the cheap
// benchmarks and validates the BENCH_refine.json shape.
func TestRunEmitsWellFormedJSON(t *testing.T) {
	out := filepath.Join(t.TempDir(), "BENCH_refine.json")
	var stdout bytes.Buffer
	if err := run(runConfig{outPath: out, pattern: "^Refines/", benchtime: "1x", gateFactor: 2}, &stdout); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var doc Output
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, data)
	}
	if doc.GoMaxProcs != runtime.GOMAXPROCS(0) {
		t.Errorf("goMaxProcs = %d, want %d", doc.GoMaxProcs, runtime.GOMAXPROCS(0))
	}
	if doc.GoVersion == "" {
		t.Error("goVersion missing")
	}
	if doc.Metrics != nil {
		t.Error("metrics present without -metrics")
	}
	want := map[string]bool{"Refines/cold": true, "Refines/cached": true}
	if len(doc.Benchmarks) != len(want) {
		t.Fatalf("got %d benchmarks, want %d: %+v", len(doc.Benchmarks), len(want), doc.Benchmarks)
	}
	for _, m := range doc.Benchmarks {
		if !want[m.Name] {
			t.Errorf("unexpected benchmark %q", m.Name)
		}
		if m.Iterations < 1 || m.NsPerOp <= 0 {
			t.Errorf("%s: implausible measurement %+v", m.Name, m)
		}
	}
}

func TestRunRejectsUnmatchedPattern(t *testing.T) {
	var stdout bytes.Buffer
	if err := run(runConfig{outPath: "-", pattern: "^NoSuchBenchmark$", benchtime: "1x", gateFactor: 2}, &stdout); err == nil {
		t.Fatal("pattern matching nothing should be an error")
	}
}

func TestRunRejectsBadPattern(t *testing.T) {
	var stdout bytes.Buffer
	if err := run(runConfig{outPath: "-", pattern: "(", benchtime: "1x", gateFactor: 2}, &stdout); err == nil {
		t.Fatal("invalid regexp accepted")
	}
}

// TestRunWithMetricsFoldsSnapshot asserts that -metrics embeds the
// observer snapshot in the JSON artefact: the cached Refines benchmark
// must register cache hits.
func TestRunWithMetricsFoldsSnapshot(t *testing.T) {
	out := filepath.Join(t.TempDir(), "BENCH_refine.json")
	var stdout bytes.Buffer
	cfg := runConfig{outPath: out, pattern: "^Refines/", benchtime: "1x", gateFactor: 2,
		obs: obs.Flags{Metrics: true}}
	if err := run(cfg, &stdout); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var doc Output
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Metrics == nil {
		t.Fatal("metrics snapshot missing with -metrics")
	}
	if doc.Metrics.Counters["refine.checks"] == 0 {
		t.Errorf("refine.checks counter missing from snapshot: %+v", doc.Metrics.Counters)
	}
	if doc.Metrics.Counters["lts.cache.hits"] == 0 {
		t.Errorf("cached run recorded no cache hits: %+v", doc.Metrics.Counters)
	}
}

// TestGate covers the CI regression gate: a reference document with an
// absurdly fast entry must fail the run, a slow one must pass, and
// benchmarks missing from the reference are skipped.
func TestGate(t *testing.T) {
	fresh := []Measurement{{Name: "Refines/cold", NsPerOp: 1000}, {Name: "New/bench", NsPerOp: 5}}
	write := func(ns int64) string {
		ref := Output{GoMaxProcs: runtime.GOMAXPROCS(0),
			Benchmarks: []Measurement{{Name: "Refines/cold", NsPerOp: ns}}}
		data, err := json.Marshal(ref)
		if err != nil {
			t.Fatal(err)
		}
		p := filepath.Join(t.TempDir(), "ref.json")
		if err := os.WriteFile(p, data, 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}

	var stdout bytes.Buffer
	if err := checkGate(fresh, write(400), 2, "fail", &stdout); err == nil {
		t.Error("2.5x slowdown passed a 2x gate")
	} else if !strings.Contains(err.Error(), "Refines/cold") {
		t.Errorf("gate error does not name the regression: %v", err)
	}

	stdout.Reset()
	if err := checkGate(fresh, write(600), 2, "fail", &stdout); err != nil {
		t.Errorf("1.67x slowdown failed a 2x gate: %v", err)
	}
	if !strings.Contains(stdout.String(), "no reference entry") {
		t.Errorf("unreferenced benchmark not reported as skipped:\n%s", stdout.String())
	}

	if err := checkGate(fresh, filepath.Join(t.TempDir(), "missing.json"), 2, "fail", &stdout); err == nil {
		t.Error("missing reference file accepted")
	}
}

// TestGateProcsMismatch pins the cross-environment guard: a reference
// captured at a different GOMAXPROCS must never be compared silently —
// the run fails by default, or logs an explicit skip when configured
// to.
func TestGateProcsMismatch(t *testing.T) {
	fresh := []Measurement{{Name: "Refines/cold", NsPerOp: 1000}}
	ref := Output{GoMaxProcs: runtime.GOMAXPROCS(0) + 1,
		// An absurdly fast reference entry: under "skip" the mismatch
		// must short-circuit before any ratio is computed.
		Benchmarks: []Measurement{{Name: "Refines/cold", NsPerOp: 1}}}
	data, err := json.Marshal(ref)
	if err != nil {
		t.Fatal(err)
	}
	p := filepath.Join(t.TempDir(), "ref.json")
	if err := os.WriteFile(p, data, 0o644); err != nil {
		t.Fatal(err)
	}

	var stdout bytes.Buffer
	if err := checkGate(fresh, p, 2, "fail", &stdout); err == nil {
		t.Error("GOMAXPROCS mismatch passed under \"fail\"")
	} else if !strings.Contains(err.Error(), "GOMAXPROCS") {
		t.Errorf("mismatch error does not explain itself: %v", err)
	}

	stdout.Reset()
	if err := checkGate(fresh, p, 2, "skip", &stdout); err != nil {
		t.Errorf("GOMAXPROCS mismatch failed under \"skip\": %v", err)
	}
	if !strings.Contains(stdout.String(), "skipped") || !strings.Contains(stdout.String(), "GOMAXPROCS") {
		t.Errorf("skip not logged with a reason:\n%s", stdout.String())
	}
}

// TestSpeedupGate covers the within-run parallel-speedup gate,
// including the single-core skip path with its logged reason.
func TestSpeedupGate(t *testing.T) {
	ms := []Measurement{
		{Name: "Explore/seq", NsPerOp: 100, StatesPerSec: 1000},
		{Name: "Explore/par", NsPerOp: 40, StatesPerSec: 2500},
	}
	var stdout bytes.Buffer
	if err := checkSpeedupGate(ms, 2, 4, 8, &stdout); err != nil {
		t.Errorf("2.5x speedup failed a 2x floor: %v", err)
	}
	if err := checkSpeedupGate(ms, 3, 4, 8, &stdout); err == nil {
		t.Error("2.5x speedup passed a 3x floor")
	}

	stdout.Reset()
	if err := checkSpeedupGate(ms, 3, 4, 1, &stdout); err != nil {
		t.Errorf("speedup gate applied on a single-core host: %v", err)
	}
	if !strings.Contains(stdout.String(), "skipped") || !strings.Contains(stdout.String(), "GOMAXPROCS=1") {
		t.Errorf("single-core skip not logged with a reason:\n%s", stdout.String())
	}

	if err := checkSpeedupGate(ms[:1], 2, 4, 8, &stdout); err == nil {
		t.Error("missing Explore/par measurement accepted")
	}
}

// TestInternGate covers the within-run interning gate: the production
// engine must beat the string-keyed reference engine.
func TestInternGate(t *testing.T) {
	ms := []Measurement{
		{Name: "Explore/stringkeys", NsPerOp: 300, StatesPerSec: 1000},
		{Name: "Explore/seq", NsPerOp: 100, StatesPerSec: 3000},
	}
	var stdout bytes.Buffer
	if err := checkInternGate(ms, 2, &stdout); err != nil {
		t.Errorf("3x interning win failed a 2x floor: %v", err)
	}
	if err := checkInternGate(ms, 4, &stdout); err == nil {
		t.Error("3x interning win passed a 4x floor")
	}
	if err := checkInternGate(ms[1:], 2, &stdout); err == nil {
		t.Error("missing Explore/stringkeys measurement accepted")
	}
}
