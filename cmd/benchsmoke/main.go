// Command benchsmoke runs the refinement-centric benchmark suite once
// via testing.Benchmark and writes the measurements as machine-readable
// JSON (BENCH_refine.json) — the artefact CI publishes so performance
// regressions in exploration, refinement checking and campaign
// throughput are visible per commit. The paired entries measure the
// same work sequentially and in parallel (Explore, FaultCampaign) or
// cold versus cached (Refines); on a single-core host the parallel
// numbers measure synchronization overhead, not speedup, so readers
// must interpret the table together with goMaxProcs.
//
// Usage:
//
//	benchsmoke [-o BENCH_refine.json] [-bench regexp] [-benchtime 2s|10x]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"runtime"
	"testing"

	"repro/internal/canbus"
	"repro/internal/csp"
	"repro/internal/faultcampaign"
	"repro/internal/lts"
	"repro/internal/ota"
	"repro/internal/refine"
)

// Measurement is one benchmark result.
type Measurement struct {
	Name       string  `json:"name"`
	Iterations int     `json:"iterations"`
	NsPerOp    int64   `json:"nsPerOp"`
	// StatesPerSec reports exploration throughput where it applies.
	StatesPerSec float64 `json:"statesPerSec,omitempty"`
}

// Output is the BENCH_refine.json document.
type Output struct {
	GoVersion  string        `json:"goVersion"`
	GoMaxProcs int           `json:"goMaxProcs"`
	Benchmarks []Measurement `json:"benchmarks"`
}

func main() {
	out := flag.String("o", "BENCH_refine.json", "output path (- for stdout)")
	pattern := flag.String("bench", ".", "regexp selecting benchmarks by name")
	benchtime := flag.String("benchtime", "", `per-benchmark budget, a duration ("2s") or count ("10x"); empty uses the testing default`)
	flag.Parse()
	if err := run(*out, *pattern, *benchtime, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "benchsmoke:", err)
		os.Exit(1)
	}
}

func run(outPath, pattern, benchtime string, stdout io.Writer) error {
	re, err := regexp.Compile(pattern)
	if err != nil {
		return fmt.Errorf("bad -bench pattern: %w", err)
	}
	if benchtime != "" {
		// testing.Init is idempotent, so this also works from tests.
		testing.Init()
		if err := flag.Set("test.benchtime", benchtime); err != nil {
			return fmt.Errorf("bad -benchtime: %w", err)
		}
	}
	benches, err := suite()
	if err != nil {
		return err
	}
	var ms []Measurement
	for _, bm := range benches {
		if !re.MatchString(bm.name) {
			continue
		}
		res := testing.Benchmark(bm.fn)
		if res.N == 0 {
			return fmt.Errorf("benchmark %s failed", bm.name)
		}
		m := Measurement{Name: bm.name, Iterations: res.N, NsPerOp: res.NsPerOp()}
		if v, ok := res.Extra["states/s"]; ok {
			m.StatesPerSec = v
		}
		fmt.Fprintf(stdout, "%-24s %6d iterations  %12d ns/op\n", m.Name, m.Iterations, m.NsPerOp)
		ms = append(ms, m)
	}
	if len(ms) == 0 {
		return fmt.Errorf("no benchmarks match %q", pattern)
	}
	doc := Output{
		GoVersion:  runtime.Version(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Benchmarks: ms,
	}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if outPath == "-" {
		_, err = stdout.Write(data)
		return err
	}
	if err := os.WriteFile(outPath, data, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(stdout, "wrote %s\n", outPath)
	return nil
}

// namedBench pairs a stable measurement name with its benchmark body.
// Names are fixed across host configurations (seq/par, cold/cached) so
// committed BENCH_refine.json files stay diffable; goMaxProcs carries
// the host parallelism instead.
type namedBench struct {
	name string
	fn   func(b *testing.B)
}

// suite builds the benchmark list: exploration of the largest
// case-study state space (sequential vs parallel), a full refinement
// check (cold vs cached), and the fault-injection campaign (sequential
// vs parallel scenarios).
func suite() ([]namedBench, error) {
	lossy, err := ota.BuildLossy(ota.HardenedGateway, ota.DefaultLossBudget)
	if err != nil {
		return nil, fmt.Errorf("build lossy system: %w", err)
	}
	sem := csp.NewSemantics(lossy.Model.Env, lossy.Model.Ctx)
	system := csp.Call("SYSTEML")

	plain, err := ota.Build()
	if err != nil {
		return nil, fmt.Errorf("build system: %w", err)
	}
	spec := plain.Model.Asserts[ota.AssertR02].Spec
	impl := plain.Model.Asserts[ota.AssertR02].Impl

	explore := func(workers int) func(b *testing.B) {
		return func(b *testing.B) {
			states := 0
			for i := 0; i < b.N; i++ {
				l, err := lts.Explore(sem, system, lts.Options{Workers: workers})
				if err != nil {
					b.Fatal(err)
				}
				states = l.NumStates()
			}
			b.ReportMetric(float64(states)*float64(b.N)/b.Elapsed().Seconds(), "states/s")
		}
	}
	refines := func(cache *lts.Cache) func(b *testing.B) {
		return func(b *testing.B) {
			c := refine.NewChecker(plain.Model.Env, plain.Model.Ctx)
			c.Cache = cache
			if cache != nil {
				// Prime outside the timed loop: "cached" measures the
				// steady state of a campaign, not the first assertion.
				if _, err := c.RefinesTraces(spec, impl); err != nil {
					b.Fatal(err)
				}
				b.ResetTimer()
			}
			for i := 0; i < b.N; i++ {
				res, err := c.RefinesTraces(spec, impl)
				if err != nil {
					b.Fatal(err)
				}
				if !res.Holds {
					b.Fatal("R02 check failed")
				}
			}
		}
	}
	campaign := func(workers int) func(b *testing.B) {
		return func(b *testing.B) {
			cfg := faultcampaign.Config{
				Seed:         42,
				SeedsPerCase: 1,
				Horizon:      200 * canbus.Millisecond,
				Workers:      workers,
			}
			for i := 0; i < b.N; i++ {
				rep := faultcampaign.Run(cfg)
				if rep.Errored != 0 {
					b.Fatalf("%d scenarios errored", rep.Errored)
				}
			}
		}
	}

	primed := lts.NewCache()
	return []namedBench{
		{"Explore/seq", explore(1)},
		{"Explore/par", explore(0)},
		{"Refines/cold", refines(nil)},
		{"Refines/cached", refines(primed)},
		{"FaultCampaign/seq", campaign(1)},
		{"FaultCampaign/par", campaign(0)},
	}, nil
}
