// Command benchsmoke runs the refinement-centric benchmark suite once
// via testing.Benchmark and writes the measurements as machine-readable
// JSON (BENCH_refine.json) — the artefact CI publishes so performance
// regressions in exploration, refinement checking and campaign
// throughput are visible per commit. The paired entries measure the
// same work sequentially and in parallel (Explore, FaultCampaign) or
// cold versus cached (Refines); on a single-core host the parallel
// numbers measure synchronization overhead, not speedup, so readers
// must interpret the table together with goMaxProcs.
//
// With -gate, a previously committed BENCH_refine.json acts as the
// reference: any benchmark whose fresh ns/op exceeds the reference by
// more than -gate-factor fails the run, which is how CI turns the
// artefact into a regression gate. ns/op ratios are only meaningful
// between runs on comparable hosts, so a reference captured at a
// different GOMAXPROCS fails the run (-gate-procs-mismatch fail, the
// default) or skips the comparison with a logged reason
// (-gate-procs-mismatch skip) — it is never compared silently.
//
// Two further gates compare measurements within the fresh run, so they
// hold on any host without a committed reference:
//
//   - -gate-speedup F requires Explore/par to beat Explore/seq by at
//     least F in states/s. Parallel speedup needs cores: when
//     GOMAXPROCS is below -gate-speedup-procs the gate is skipped with
//     a logged reason instead of measuring scheduler overhead.
//   - -gate-intern F requires Explore/seq to beat Explore/stringkeys
//     (the frozen string-keyed reference engine) by at least F in
//     states/s. This pins the interned-representation win and is
//     environment-independent.
//
// Usage:
//
//	benchsmoke [-o BENCH_refine.json] [-bench regexp] [-benchtime 2s|10x]
//	           [-gate BENCH_refine.json] [-gate-factor 2]
//	           [-gate-procs-mismatch fail|skip]
//	           [-gate-speedup F] [-gate-speedup-procs N] [-gate-intern F]
//	           [-metrics] [-tracefile trace.jsonl] [-progress]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"runtime"
	"strings"
	"testing"

	"repro/internal/canbus"
	"repro/internal/csp"
	"repro/internal/faultcampaign"
	"repro/internal/lts"
	"repro/internal/obs"
	"repro/internal/ota"
	"repro/internal/refine"
	"repro/internal/statestore"
)

// Measurement is one benchmark result.
type Measurement struct {
	Name       string `json:"name"`
	Iterations int    `json:"iterations"`
	NsPerOp    int64  `json:"nsPerOp"`
	// StatesPerSec reports exploration throughput where it applies.
	StatesPerSec float64 `json:"statesPerSec,omitempty"`
}

// Output is the BENCH_refine.json document. Metrics carries the
// observer snapshot of the whole suite when -metrics is on, so the
// published artefact records cache hit rates and explored-state counts
// alongside the timings they explain.
type Output struct {
	GoVersion  string        `json:"goVersion"`
	GoMaxProcs int           `json:"goMaxProcs"`
	Benchmarks []Measurement `json:"benchmarks"`
	Metrics    *obs.Snapshot `json:"metrics,omitempty"`
}

// runConfig bundles the command's flags.
type runConfig struct {
	outPath       string
	pattern       string
	benchtime     string
	gatePath      string    // reference BENCH_refine.json; empty disables the gate
	gateFactor    float64   // max allowed fresh/reference ns/op ratio
	procsMismatch string    // "fail" or "skip" when reference goMaxProcs differs
	speedupFloor  float64   // min Explore/par vs Explore/seq states/s ratio; 0 disables
	speedupProcs  int       // min GOMAXPROCS for the speedup gate to apply
	internFloor   float64   // min Explore/seq vs Explore/stringkeys states/s ratio; 0 disables
	obs           obs.Flags // -metrics / -tracefile / -progress
}

func main() {
	var cfg runConfig
	flag.StringVar(&cfg.outPath, "o", "BENCH_refine.json", "output path (- for stdout)")
	flag.StringVar(&cfg.pattern, "bench", ".", "regexp selecting benchmarks by name")
	flag.StringVar(&cfg.benchtime, "benchtime", "", `per-benchmark budget, a duration ("2s") or count ("10x"); empty uses the testing default`)
	flag.StringVar(&cfg.gatePath, "gate", "", "reference BENCH_refine.json to gate against (empty: no gate)")
	flag.Float64Var(&cfg.gateFactor, "gate-factor", 2, "fail when fresh ns/op exceeds the reference by more than this factor")
	flag.StringVar(&cfg.procsMismatch, "gate-procs-mismatch", "fail", `"fail" or "skip" the -gate comparison when the reference was captured at a different GOMAXPROCS`)
	flag.Float64Var(&cfg.speedupFloor, "gate-speedup", 0, "fail unless Explore/par beats Explore/seq by this states/s factor (0: no gate; skipped below -gate-speedup-procs)")
	flag.IntVar(&cfg.speedupProcs, "gate-speedup-procs", 4, "minimum GOMAXPROCS for -gate-speedup to apply")
	flag.Float64Var(&cfg.internFloor, "gate-intern", 0, "fail unless Explore/seq beats Explore/stringkeys by this states/s factor (0: no gate)")
	cfg.obs.AddFlags(flag.CommandLine)
	flag.Parse()
	if err := run(cfg, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "benchsmoke:", err)
		os.Exit(1)
	}
}

func run(cfg runConfig, stdout io.Writer) error {
	re, err := regexp.Compile(cfg.pattern)
	if err != nil {
		return fmt.Errorf("bad -bench pattern: %w", err)
	}
	if cfg.gateFactor <= 0 {
		return fmt.Errorf("gate factor must be positive, got %v", cfg.gateFactor)
	}
	if cfg.procsMismatch == "" {
		cfg.procsMismatch = "fail"
	}
	if cfg.procsMismatch != "fail" && cfg.procsMismatch != "skip" {
		return fmt.Errorf(`-gate-procs-mismatch must be "fail" or "skip", got %q`, cfg.procsMismatch)
	}
	if cfg.benchtime != "" {
		// testing.Init is idempotent, so this also works from tests.
		testing.Init()
		if err := flag.Set("test.benchtime", cfg.benchtime); err != nil {
			return fmt.Errorf("bad -benchtime: %w", err)
		}
	}
	observer, finishObs, err := cfg.obs.Build(os.Stderr)
	if err != nil {
		return err
	}
	benches, err := suite(observer)
	if err != nil {
		return err
	}
	var ms []Measurement
	for _, bm := range benches {
		if !re.MatchString(bm.name) {
			continue
		}
		res := testing.Benchmark(bm.fn)
		if res.N == 0 {
			return fmt.Errorf("benchmark %s failed", bm.name)
		}
		m := Measurement{Name: bm.name, Iterations: res.N, NsPerOp: res.NsPerOp()}
		if v, ok := res.Extra["states/s"]; ok {
			m.StatesPerSec = v
		}
		fmt.Fprintf(stdout, "%-24s %6d iterations  %12d ns/op\n", m.Name, m.Iterations, m.NsPerOp)
		ms = append(ms, m)
	}
	if len(ms) == 0 {
		return fmt.Errorf("no benchmarks match %q", cfg.pattern)
	}
	doc := Output{
		GoVersion:  runtime.Version(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Benchmarks: ms,
	}
	if cfg.obs.Metrics && observer != nil {
		snap := observer.Snapshot()
		doc.Metrics = &snap
	}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if cfg.outPath == "-" {
		if _, err := stdout.Write(data); err != nil {
			return err
		}
	} else {
		if err := os.WriteFile(cfg.outPath, data, 0o644); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "wrote %s\n", cfg.outPath)
	}
	if err := finishObs(); err != nil {
		return err
	}
	if cfg.gatePath != "" {
		if err := checkGate(ms, cfg.gatePath, cfg.gateFactor, cfg.procsMismatch, stdout); err != nil {
			return err
		}
	}
	if cfg.speedupFloor > 0 {
		if err := checkSpeedupGate(ms, cfg.speedupFloor, cfg.speedupProcs, runtime.GOMAXPROCS(0), stdout); err != nil {
			return err
		}
	}
	if cfg.internFloor > 0 {
		if err := checkInternGate(ms, cfg.internFloor, stdout); err != nil {
			return err
		}
	}
	return nil
}

// statesPerSec returns the states/s metric of the named measurement.
func statesPerSec(ms []Measurement, name string) (float64, error) {
	for _, m := range ms {
		if m.Name == name {
			if m.StatesPerSec <= 0 {
				return 0, fmt.Errorf("%s has no states/s metric", name)
			}
			return m.StatesPerSec, nil
		}
	}
	return 0, fmt.Errorf("%s was not measured (check -bench)", name)
}

// checkSpeedupGate pins the parallel exploration win within a single
// run: Explore/par must beat Explore/seq by at least floor in states/s.
// The gate only applies on hosts with at least minProcs schedulable
// CPUs — below that there is no parallelism to demonstrate, so the gate
// is skipped with a logged reason rather than measuring coordination
// overhead and calling it a regression.
func checkSpeedupGate(ms []Measurement, floor float64, minProcs, procs int, stdout io.Writer) error {
	if procs < minProcs {
		fmt.Fprintf(stdout, "gate: speedup skipped: GOMAXPROCS=%d < %d, no parallelism to demonstrate on this host\n",
			procs, minProcs)
		return nil
	}
	seq, err := statesPerSec(ms, "Explore/seq")
	if err != nil {
		return fmt.Errorf("speedup gate: %w", err)
	}
	par, err := statesPerSec(ms, "Explore/par")
	if err != nil {
		return fmt.Errorf("speedup gate: %w", err)
	}
	ratio := par / seq
	fmt.Fprintf(stdout, "gate: speedup %.0f vs %.0f states/s (%.2fx, floor %.2fx, GOMAXPROCS=%d)\n",
		par, seq, ratio, floor, procs)
	if ratio < floor {
		return fmt.Errorf("speedup gate failed: Explore/par %.0f states/s is only %.2fx of Explore/seq %.0f (floor %.2fx at GOMAXPROCS=%d)",
			par, ratio, seq, floor, procs)
	}
	return nil
}

// checkInternGate pins the interned-representation win within a single
// run: the production sequential engine must beat the frozen
// string-keyed reference engine by at least floor in states/s. Both
// sides run in the same process on the same host, so this gate needs no
// committed reference and holds on single-core runners.
func checkInternGate(ms []Measurement, floor float64, stdout io.Writer) error {
	strk, err := statesPerSec(ms, "Explore/stringkeys")
	if err != nil {
		return fmt.Errorf("intern gate: %w", err)
	}
	seq, err := statesPerSec(ms, "Explore/seq")
	if err != nil {
		return fmt.Errorf("intern gate: %w", err)
	}
	ratio := seq / strk
	fmt.Fprintf(stdout, "gate: intern %.0f vs %.0f states/s (%.2fx, floor %.2fx)\n",
		seq, strk, ratio, floor)
	if ratio < floor {
		return fmt.Errorf("intern gate failed: Explore/seq %.0f states/s is only %.2fx of Explore/stringkeys %.0f (floor %.2fx)",
			seq, ratio, strk, floor)
	}
	return nil
}

// checkGate compares fresh measurements against a committed reference
// document and fails when any shared benchmark slowed down by more than
// factor. Benchmarks present on only one side are reported but never
// fail the gate, so adding or renaming a benchmark does not require a
// lockstep reference update.
// A reference captured at a different GOMAXPROCS is a different
// machine shape: its ns/op carry a different parallelism, so comparing
// against it yields false regressions (or worse, false passes). Such a
// reference fails the gate under onMismatch "fail" (the default for CI,
// where runner shape is pinned) and skips it with a logged reason under
// "skip" (for local runs on arbitrary hardware).
func checkGate(fresh []Measurement, refPath string, factor float64, onMismatch string, stdout io.Writer) error {
	data, err := os.ReadFile(refPath)
	if err != nil {
		return fmt.Errorf("gate reference: %w", err)
	}
	var ref Output
	if err := json.Unmarshal(data, &ref); err != nil {
		return fmt.Errorf("gate reference %s: %w", refPath, err)
	}
	if procs := runtime.GOMAXPROCS(0); ref.GoMaxProcs != procs {
		if onMismatch == "skip" {
			fmt.Fprintf(stdout, "gate: skipped: reference %s was captured at GOMAXPROCS=%d, this host runs %d — ns/op ratios across machine shapes are not comparable\n",
				refPath, ref.GoMaxProcs, procs)
			return nil
		}
		return fmt.Errorf("gate reference %s was captured at GOMAXPROCS=%d but this host runs %d; ns/op ratios across machine shapes are not comparable (re-capture the reference or pass -gate-procs-mismatch skip)",
			refPath, ref.GoMaxProcs, procs)
	}
	refNs := make(map[string]int64, len(ref.Benchmarks))
	for _, m := range ref.Benchmarks {
		refNs[m.Name] = m.NsPerOp
	}
	var regressions []string
	for _, m := range fresh {
		base, ok := refNs[m.Name]
		if !ok {
			fmt.Fprintf(stdout, "gate: %-24s no reference entry, skipped\n", m.Name)
			continue
		}
		ratio := float64(m.NsPerOp) / float64(base)
		fmt.Fprintf(stdout, "gate: %-24s %12d ns/op vs %12d reference (%.2fx)\n",
			m.Name, m.NsPerOp, base, ratio)
		if ratio > factor {
			regressions = append(regressions,
				fmt.Sprintf("%s: %d ns/op vs %d reference (%.2fx > %.2fx)",
					m.Name, m.NsPerOp, base, ratio, factor))
		}
	}
	if len(regressions) > 0 {
		return fmt.Errorf("performance gate failed:\n  %s", strings.Join(regressions, "\n  "))
	}
	return nil
}

// namedBench pairs a stable measurement name with its benchmark body.
// Names are fixed across host configurations (seq/par, cold/cached) so
// committed BENCH_refine.json files stay diffable; goMaxProcs carries
// the host parallelism instead.
type namedBench struct {
	name string
	fn   func(b *testing.B)
}

// suite builds the benchmark list: exploration of the largest
// case-study state space (sequential vs parallel), a full refinement
// check (cold vs cached), and the fault-injection campaign (sequential
// vs parallel scenarios). The observer (nil when disabled) is threaded
// through every layer so -metrics aggregates the whole suite.
func suite(o *obs.Observer) ([]namedBench, error) {
	lossy, err := ota.BuildLossy(ota.HardenedGateway, ota.DefaultLossBudget)
	if err != nil {
		return nil, fmt.Errorf("build lossy system: %w", err)
	}
	sem := csp.NewSemantics(lossy.Model.Env, lossy.Model.Ctx)
	system := csp.Call("SYSTEML")

	plain, err := ota.Build()
	if err != nil {
		return nil, fmt.Errorf("build system: %w", err)
	}
	spec := plain.Model.Asserts[ota.AssertR02].Spec
	impl := plain.Model.Asserts[ota.AssertR02].Impl

	exploreStringKeys := func(b *testing.B) {
		// The frozen string-keyed engine prices what term interning
		// replaced: every visited-set probe rendered the state's full
		// canonical key string. Within-run baseline for -gate-intern.
		states := 0
		for i := 0; i < b.N; i++ {
			l, err := lts.ExploreReference(sem, system, 0)
			if err != nil {
				b.Fatal(err)
			}
			states = l.NumStates()
		}
		b.ReportMetric(float64(states)*float64(b.N)/b.Elapsed().Seconds(), "states/s")
	}
	explore := func(workers int) func(b *testing.B) {
		return func(b *testing.B) {
			states := 0
			for i := 0; i < b.N; i++ {
				l, err := lts.Explore(sem, system, lts.Options{Workers: workers, Obs: o})
				if err != nil {
					b.Fatal(err)
				}
				states = l.NumStates()
			}
			b.ReportMetric(float64(states)*float64(b.N)/b.Elapsed().Seconds(), "states/s")
		}
	}
	refines := func(cache *lts.Cache) func(b *testing.B) {
		return func(b *testing.B) {
			c := refine.NewChecker(plain.Model.Env, plain.Model.Ctx)
			c.Cache = cache
			c.Obs = o
			if cache != nil {
				// Prime outside the timed loop: "cached" measures the
				// steady state of a campaign, not the first assertion.
				if _, err := c.RefinesTraces(spec, impl); err != nil {
					b.Fatal(err)
				}
				b.ResetTimer()
			}
			for i := 0; i < b.N; i++ {
				res, err := c.RefinesTraces(spec, impl)
				if err != nil {
					b.Fatal(err)
				}
				if !res.Holds {
					b.Fatal("R02 check failed")
				}
			}
		}
	}
	exploreSpill := func(b *testing.B) {
		// Memory-pressure mode, worst case: the visited index is
		// hash-sharded onto disk from the first state (watermark 0). The
		// LTS must come out byte-identical to the in-memory runs above.
		dir, err := os.MkdirTemp("", "benchsmoke-spill-*")
		if err != nil {
			b.Fatal(err)
		}
		defer os.RemoveAll(dir)
		states := 0
		for i := 0; i < b.N; i++ {
			st := statestore.NewSpill(statestore.SpillConfig{Dir: dir, SoftMemBytes: 0, Obs: o})
			l, err := lts.Explore(sem, system, lts.Options{Workers: 1, Store: st, Obs: o})
			if err != nil {
				b.Fatal(err)
			}
			states = l.NumStates()
			if err := st.Close(); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(states)*float64(b.N)/b.Elapsed().Seconds(), "states/s")
	}
	campaign := func(workers int) func(b *testing.B) {
		return func(b *testing.B) {
			cfg := faultcampaign.Config{
				Seed:         42,
				SeedsPerCase: 1,
				Horizon:      200 * canbus.Millisecond,
				Workers:      workers,
				Obs:          o,
			}
			for i := 0; i < b.N; i++ {
				rep := faultcampaign.Run(cfg)
				if rep.Errored != 0 {
					b.Fatalf("%d scenarios errored", rep.Errored)
				}
			}
		}
	}

	primed := lts.NewCache()
	primed.Obs = o
	return []namedBench{
		{"Explore/stringkeys", exploreStringKeys},
		{"Explore/seq", explore(1)},
		{"Explore/par", explore(0)},
		{"Explore/spill", exploreSpill},
		{"Refines/cold", refines(nil)},
		{"Refines/cached", refines(primed)},
		{"FaultCampaign/seq", campaign(1)},
		{"FaultCampaign/par", campaign(0)},
	}, nil
}
