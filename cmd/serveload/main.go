// Command serveload is the chaos soak for the fdrserve daemon: it
// fires a seeded, fuzzed schedule of requests — healthy checks,
// malformed CSPm, oversized bodies, mid-flight cancels, slow-loris
// connections, overload bursts and injected handler panics — at a
// server and asserts the robustness contract throughout: the server
// stays live, every accepted request yields verdicts byte-identical to
// an in-process oracle run of the same model, overload is rejected
// with 429 rather than queue collapse, and no goroutines leak.
//
// Usage:
//
//	serveload [-seed 42] [-requests 40] [-workers 2] [-queue 3]
//	serveload -smoke -addr http://127.0.0.1:8080
//	serveload -submit -addr http://127.0.0.1:8080
//	serveload -collect -addr http://127.0.0.1:8080
//	serveload -crash [-seed 42] [-kills 6]
//
// The default mode self-hosts a chaos-enabled server in-process (the
// soak); -smoke instead checks the OTA corpus against an externally
// started fdrserve and diffs the verdicts — the CI smoke step.
//
// -submit and -collect drive the durable-job API of an external server:
// -submit enqueues the corpus as jobs and exits without waiting (so the
// server can be SIGKILLed mid-run), -collect resubmits the identical
// requests (idempotent, same content-addressed ids) and polls until
// every job is done, diffing the verdicts against the oracle. Together
// they are the CI kill/restart/resume smoke.
//
// -crash is the in-process kill schedule: it self-hosts a durable
// server, submits corpus and heavy jobs, kills and reboots the server
// repeatedly at randomized delays, and asserts that every job still
// converges to oracle-identical verdicts with no goroutine leaked.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"os"
	"sort"
	"strings"
	"time"

	"repro/internal/cspm"
	"repro/internal/fdr"
	"repro/internal/leakcheck"
	"repro/internal/lts"
	"repro/internal/obs"
	"repro/internal/ota"
	"repro/internal/serve"
	"repro/internal/serve/client"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "serveload:", err)
		os.Exit(1)
	}
}

// corpusModel is one known model with its oracle verdicts.
type corpusModel struct {
	name     string
	source   string
	expected []serve.AssertVerdict
}

// oracleBudget is the budget used for both the oracle runs and the
// request bodies, small enough that the server never clamps it and no
// cap fires on the corpus models — so verdicts depend on nothing but
// the model.
var oracleBudget = serve.BudgetSpec{MaxStates: 1 << 18}

// expectVerdicts is the independent oracle: it converts library check
// results into wire verdicts without going through internal/serve's
// own conversion, so a server-side corruption cannot cancel out.
func expectVerdicts(src string) ([]serve.AssertVerdict, error) {
	model, err := cspm.Load(src)
	if err != nil {
		return nil, err
	}
	bgt := fdr.Budget{MaxStates: oracleBudget.MaxStates, Workers: 1, Cache: lts.NewCache()}
	out := make([]serve.AssertVerdict, 0, len(model.Asserts))
	for _, a := range model.Asserts {
		res, err := fdr.RunAssertBudget(model, a, bgt)
		if err != nil {
			return nil, fmt.Errorf("oracle %q: %w", a.Text, err)
		}
		v := serve.AssertVerdict{
			Assert:        a.Text,
			Holds:         res.Holds,
			Reason:        res.Reason,
			ImplStates:    res.ImplStates,
			SpecNodes:     res.SpecNodes,
			ProductStates: res.ProductStates,
		}
		for _, ev := range res.Counterexample {
			v.Counterexample = append(v.Counterexample, ev.String())
		}
		out = append(out, v)
	}
	return out, nil
}

// buildCorpus assembles the known-model corpus: the paper's OTA system,
// its flawed and deadlocked variants, and both lossy-channel gateways.
func buildCorpus() ([]corpusModel, error) {
	var out []corpusModel
	add := func(name string, sys *ota.System, err error) error {
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		exp, err := expectVerdicts(sys.Source)
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		out = append(out, corpusModel{name: name, source: sys.Source, expected: exp})
		return nil
	}
	sys, err := ota.Build()
	if err := add("ota", sys, err); err != nil {
		return nil, err
	}
	sys, err = ota.BuildFlawed()
	if err := add("ota-flawed", sys, err); err != nil {
		return nil, err
	}
	sys, err = ota.BuildDeadlocked()
	if err := add("ota-deadlocked", sys, err); err != nil {
		return nil, err
	}
	sys, err = ota.BuildLossy(ota.HardenedGateway, 1)
	if err := add("ota-lossy-hardened", sys, err); err != nil {
		return nil, err
	}
	sys, err = ota.BuildLossy(ota.NaiveGateway, 1)
	if err := add("ota-lossy-naive", sys, err); err != nil {
		return nil, err
	}
	return out, nil
}

// heavyModel generates a unique, never-cached model whose exploration
// is big enough to hold a worker busy: id makes the channel names (and
// so the cache key) fresh, and k two-state processes interleaved give
// 2^k syntactically distinct product states.
func heavyModel(id, k int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "channel h%d, t%d\n", id, id)
	fmt.Fprintf(&b, "P%d = h%d -> t%d -> P%d\n", id, id, id, id)
	b.WriteString(fmt.Sprintf("SYS%d = ", id))
	for i := 0; i < k; i++ {
		if i > 0 {
			b.WriteString(" ||| ")
		}
		fmt.Fprintf(&b, "P%d", id)
	}
	b.WriteString("\n")
	fmt.Fprintf(&b, "assert SYS%d :[deadlock free]\n", id)
	return b.String()
}

// harness carries the soak state.
type harness struct {
	base    string
	httpc   *http.Client
	rng     *rand.Rand
	corpus  []corpusModel
	cli     *client.Client
	verbose bool

	events     map[string]int
	violations []string
	stdout     io.Writer
}

func (h *harness) fail(format string, args ...any) {
	msg := fmt.Sprintf(format, args...)
	h.violations = append(h.violations, msg)
	fmt.Fprintln(h.stdout, "VIOLATION:", msg)
}

func (h *harness) logf(format string, args ...any) {
	if h.verbose {
		fmt.Fprintf(h.stdout, format+"\n", args...)
	}
}

// post sends one raw request without retries.
func (h *harness) post(ctx context.Context, body []byte, hdr map[string]string) (int, []byte, http.Header, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, h.base+"/v1/check", bytes.NewReader(body))
	if err != nil {
		return 0, nil, nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := h.httpc.Do(req)
	if err != nil {
		return 0, nil, nil, err
	}
	defer resp.Body.Close()
	rb, err := io.ReadAll(io.LimitReader(resp.Body, 16<<20))
	return resp.StatusCode, rb, resp.Header, err
}

// checkHealth asserts the liveness endpoint still answers 200 — the
// "server stays live" invariant probed after every chaos event.
func (h *harness) checkHealth(when string) {
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	req, _ := http.NewRequestWithContext(ctx, http.MethodGet, h.base+"/healthz", nil)
	resp, err := h.httpc.Do(req)
	if err != nil {
		h.fail("healthz unreachable after %s: %v", when, err)
		return
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		h.fail("healthz returned %d after %s", resp.StatusCode, when)
	}
}

// compareVerdicts diffs got against want byte-for-byte via canonical
// JSON.
func (h *harness) compareVerdicts(name string, got, want []serve.AssertVerdict) {
	gj, _ := json.Marshal(got)
	wj, _ := json.Marshal(want)
	if !bytes.Equal(gj, wj) {
		h.fail("%s: verdicts diverge from oracle\n got: %s\nwant: %s", name, gj, wj)
	}
}

// evValid checks one random corpus model through the retrying client
// and diffs the verdicts against the oracle.
func (h *harness) evValid(ctx context.Context) {
	m := h.corpus[h.rng.Intn(len(h.corpus))]
	resp, err := h.cli.Check(ctx, serve.CheckRequest{CSPM: m.source, Budget: &oracleBudget})
	if err != nil {
		h.fail("valid %s: %v", m.name, err)
		return
	}
	if resp.Error != "" {
		h.fail("valid %s: server error %q", m.name, resp.Error)
		return
	}
	h.compareVerdicts(m.name, resp.Results, m.expected)
	h.logf("valid %s: %d verdicts ok", m.name, len(resp.Results))
}

// evMalformedJSON posts a body that is not JSON; the server must answer
// 400 without consuming a worker.
func (h *harness) evMalformedJSON(ctx context.Context) {
	status, _, _, err := h.post(ctx, []byte(`{"cspm": unterminated`), nil)
	if err != nil {
		h.fail("malformed-json: transport error: %v", err)
		return
	}
	if status != http.StatusBadRequest {
		h.fail("malformed-json: got %d, want 400", status)
	}
}

// evBadCSPM posts valid JSON around an unparseable model; 400 with a
// structured cspm error.
func (h *harness) evBadCSPM(ctx context.Context) {
	bad := []string{
		"P = [] ->",
		"datatype = |||",
		"assert NOPE [T= MISSING",
		"channel\nP = -> Q",
	}[h.rng.Intn(4)]
	body, _ := json.Marshal(serve.CheckRequest{CSPM: bad})
	status, rb, _, err := h.post(ctx, body, nil)
	if err != nil {
		h.fail("bad-cspm: transport error: %v", err)
		return
	}
	if status != http.StatusBadRequest {
		h.fail("bad-cspm: got %d (%s), want 400", status, rb)
	}
}

// evOversized posts a body past the server cap; 413.
func (h *harness) evOversized(ctx context.Context) {
	big := serve.CheckRequest{CSPM: "-- " + strings.Repeat("x", 1<<20)}
	body, _ := json.Marshal(big)
	status, _, _, err := h.post(ctx, body, nil)
	if err != nil {
		h.fail("oversized: transport error: %v", err)
		return
	}
	if status != http.StatusRequestEntityTooLarge {
		h.fail("oversized: got %d, want 413", status)
	}
}

// evCancel starts a heavy check and cancels it mid-flight; the
// transport must error with the cancellation and the server must stay
// healthy with its worker freed (verified by the follow-up valid
// check).
func (h *harness) evCancel(ctx context.Context, id int) {
	src := heavyModel(id, 17)
	body, _ := json.Marshal(serve.CheckRequest{CSPM: src})
	cctx, cancel := context.WithTimeout(ctx, time.Duration(2+h.rng.Intn(40))*time.Millisecond)
	defer cancel()
	_, _, _, err := h.post(cctx, body, nil)
	if err == nil {
		// The check won the race — legal for the shortest timeouts.
		h.logf("cancel %d: completed before the cancel fired", id)
		return
	}
	if !strings.Contains(err.Error(), "context deadline exceeded") &&
		!strings.Contains(err.Error(), "context canceled") {
		h.fail("cancel %d: unexpected transport error: %v", id, err)
	}
}

// evPanic injects a handler panic via the chaos header; the server must
// answer a structured 500 and survive.
func (h *harness) evPanic(ctx context.Context) {
	m := h.corpus[0]
	body, _ := json.Marshal(serve.CheckRequest{CSPM: m.source})
	status, rb, _, err := h.post(ctx, body, map[string]string{"X-Chaos-Panic": "1"})
	if err != nil {
		h.fail("panic: transport error: %v", err)
		return
	}
	if status != http.StatusInternalServerError {
		h.fail("panic: got %d, want 500", status)
		return
	}
	var cr serve.CheckResponse
	if err := json.Unmarshal(rb, &cr); err != nil || !strings.Contains(cr.Error, "panicked") {
		h.fail("panic: want structured panic error, got %q", rb)
	}
}

// evBurst fires more concurrent heavy checks than the server has
// worker slots and queue positions; at least one must be rejected with
// 429 + Retry-After, none may fail the transport, and the server must
// not collapse.
func (h *harness) evBurst(ctx context.Context, id, slots int) {
	n := slots + 3
	type res struct {
		status int
		header http.Header
		err    error
	}
	results := make(chan res, n)
	for i := 0; i < n; i++ {
		body, _ := json.Marshal(serve.CheckRequest{CSPM: heavyModel(id*1000+i, 13)})
		go func(b []byte) {
			defer func() {
				// A panicking burst sender must still report, or the
				// collection loop below deadlocks the soak.
				if r := recover(); r != nil {
					results <- res{err: fmt.Errorf("burst sender panicked: %v", r)}
				}
			}()
			status, _, hdr, err := h.post(ctx, b, nil)
			results <- res{status, hdr, err}
		}(body)
	}
	rejected, completed := 0, 0
	for i := 0; i < n; i++ {
		r := <-results
		switch {
		case r.err != nil:
			h.fail("burst %d: transport error: %v", id, r.err)
		case r.status == http.StatusTooManyRequests:
			rejected++
			if r.header.Get("Retry-After") == "" {
				h.fail("burst %d: 429 without Retry-After", id)
			}
		case r.status == http.StatusOK:
			completed++
		default:
			h.fail("burst %d: unexpected status %d", id, r.status)
		}
	}
	if rejected == 0 {
		h.fail("burst %d: %d concurrent requests against %d slots produced no 429", id, n, slots)
	}
	h.logf("burst %d: %d completed, %d rejected with 429", id, completed, rejected)
}

// evSlowLoris opens a connection, dribbles a partial request and holds;
// the server's read timeouts must reap it instead of tying up a
// connection (and, before the fix, eventually the file-descriptor
// table).
func (h *harness) evSlowLoris(addr string) {
	conn, err := net.DialTimeout("tcp", addr, 2*time.Second)
	if err != nil {
		h.fail("slowloris: dial: %v", err)
		return
	}
	defer conn.Close()
	fmt.Fprintf(conn, "POST /v1/check HTTP/1.1\r\nHost: x\r\nContent-Type: application/json\r\nContent-Length: 100000\r\n\r\n")
	io.WriteString(conn, `{"cspm": "`)
	// Hold the connection past the server's read timeout; the server
	// must close it.
	conn.SetReadDeadline(time.Now().Add(8 * time.Second))
	buf := make([]byte, 512)
	for {
		if _, err := conn.Read(buf); err != nil {
			if netErr, ok := err.(net.Error); ok && netErr.Timeout() {
				h.fail("slowloris: server kept the half-open connection past its read timeout")
			}
			return // closed by the server: the desired outcome
		}
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("serveload", flag.ContinueOnError)
	seed := fs.Int64("seed", 42, "chaos schedule seed")
	requests := fs.Int("requests", 40, "number of chaos events")
	workers := fs.Int("workers", 2, "self-hosted server worker slots")
	queue := fs.Int("queue", 3, "self-hosted server admission queue")
	smoke := fs.Bool("smoke", false, "smoke mode: verify the OTA corpus against -addr and exit")
	submit := fs.Bool("submit", false, "submit the corpus as durable jobs to -addr and exit without waiting")
	collect := fs.Bool("collect", false, "poll the corpus jobs on -addr until done and diff the verdicts")
	crash := fs.Bool("crash", false, "in-process kill/restart/resume schedule against a self-hosted durable server")
	kills := fs.Int("kills", 6, "crash mode: number of kill/restart cycles")
	addr := fs.String("addr", "", "external server base URL (smoke/submit/collect modes)")
	verbose := fs.Bool("v", false, "log every event")
	if err := fs.Parse(args); err != nil {
		return err
	}

	corpus, err := buildCorpus()
	if err != nil {
		return fmt.Errorf("build corpus: %w", err)
	}

	switch {
	case *smoke:
		if *addr == "" {
			return fmt.Errorf("-smoke requires -addr")
		}
		return runSmoke(*addr, corpus, stdout)
	case *submit:
		if *addr == "" {
			return fmt.Errorf("-submit requires -addr")
		}
		return runSubmit(*addr, corpus, stdout)
	case *collect:
		if *addr == "" {
			return fmt.Errorf("-collect requires -addr")
		}
		return runCollect(*addr, corpus, stdout)
	case *crash:
		return runCrash(*seed, *kills, *verbose, corpus, stdout)
	}
	return runChaos(*seed, *requests, *workers, *queue, *verbose, corpus, stdout)
}

// runSmoke is the CI smoke: every corpus model checked once against an
// external server, verdicts diffed against the oracle.
func runSmoke(addr string, corpus []corpusModel, stdout io.Writer) error {
	h := &harness{
		base:   strings.TrimRight(addr, "/"),
		httpc:  &http.Client{Timeout: 60 * time.Second},
		corpus: corpus,
		events: map[string]int{},
		stdout: stdout,
	}
	h.cli = client.New(h.base)
	h.cli.HTTP = h.httpc
	ctx := context.Background()
	total := 0
	for _, m := range corpus {
		resp, err := h.cli.Check(ctx, serve.CheckRequest{CSPM: m.source, Budget: &oracleBudget})
		if err != nil {
			return fmt.Errorf("smoke %s: %w", m.name, err)
		}
		h.compareVerdicts(m.name, resp.Results, m.expected)
		total += len(resp.Results)
		fmt.Fprintf(stdout, "smoke %-20s %d assertion(s) match\n", m.name, len(resp.Results))
	}
	h.checkHealth("smoke")
	if len(h.violations) > 0 {
		return fmt.Errorf("%d violation(s)", len(h.violations))
	}
	fmt.Fprintf(stdout, "smoke ok: %d models, %d assertions, verdicts identical to in-process checks\n",
		len(corpus), total)
	return nil
}

// runChaos self-hosts a chaos-enabled server and fires the seeded
// schedule at it.
func runChaos(seed int64, requests, workers, queue int, verbose bool, corpus []corpusModel, stdout io.Writer) error {
	observer := obs.New()
	srv := serve.New(serve.Config{
		Workers:     workers,
		MaxQueue:    queue,
		MaxDuration: 20 * time.Second,
		Obs:         observer,
		EnableChaos: true,
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	httpSrv := &http.Server{
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 1 * time.Second,
		ReadTimeout:       2 * time.Second,
		WriteTimeout:      60 * time.Second,
	}
	serveDone := make(chan struct{})
	go func() {
		defer close(serveDone)
		defer func() {
			// A panic escaping the HTTP stack would fail the soak by
			// taking healthz down; never take the harness down with it.
			_ = recover()
		}()
		_ = httpSrv.Serve(ln)
	}()

	h := &harness{
		base:    "http://" + ln.Addr().String(),
		httpc:   &http.Client{},
		rng:     rand.New(rand.NewSource(seed)),
		corpus:  corpus,
		verbose: verbose,
		events:  map[string]int{},
		stdout:  stdout,
	}
	h.cli = client.New(h.base)
	h.cli.HTTP = h.httpc
	h.cli.Rand = rand.New(rand.NewSource(seed + 1))

	ctx := context.Background()
	// The schedule opens with one event of every kind — a chaos soak
	// that randomly skipped the panic injection would prove nothing —
	// then draws the rest from the seeded rng.
	kinds := []string{"valid", "malformed-json", "bad-cspm", "oversized", "cancel", "panic", "burst", "slowloris"}
	weights := []int{35, 10, 10, 5, 15, 5, 10, 5}
	pick := func(i int) string {
		if i < len(kinds) {
			return kinds[i]
		}
		total := 0
		for _, w := range weights {
			total += w
		}
		n := h.rng.Intn(total)
		for j, w := range weights {
			if n < w {
				return kinds[j]
			}
			n -= w
		}
		return "valid"
	}
	start := time.Now()
	for i := 0; i < requests; i++ {
		kind := pick(i)
		h.events[kind]++
		switch kind {
		case "valid":
			h.evValid(ctx)
		case "malformed-json":
			h.evMalformedJSON(ctx)
		case "bad-cspm":
			h.evBadCSPM(ctx)
		case "oversized":
			h.evOversized(ctx)
		case "cancel":
			h.evCancel(ctx, i)
		case "panic":
			h.evPanic(ctx)
		case "burst":
			h.evBurst(ctx, i, workers+queue)
		case "slowloris":
			h.evSlowLoris(ln.Addr().String())
		}
		h.checkHealth(kind)
	}

	// Drain: readiness flips, new work is rejected, in-flight finishes.
	drainCtx, cancel := context.WithTimeout(ctx, 30*time.Second)
	defer cancel()
	drainStart := time.Now()
	if err := srv.Drain(drainCtx); err != nil {
		h.fail("drain: %v", err)
	}
	if status, _, _, err := h.post(ctx, []byte(`{"cspm":"P = STOP"}`), nil); err != nil {
		h.fail("post-drain request: transport error: %v", err)
	} else if status != http.StatusServiceUnavailable {
		h.fail("post-drain request: got %d, want 503", status)
	}
	h.checkHealth("drain")
	if err := httpSrv.Shutdown(drainCtx); err != nil {
		h.fail("shutdown: %v", err)
	}
	<-serveDone
	h.httpc.CloseIdleConnections()

	// The robustness bottom line: nothing the chaos schedule did may
	// leave a goroutine behind.
	if err := leakcheck.Settle(8 * time.Second); err != nil {
		h.fail("%v", err)
	}

	snap := observer.Snapshot()
	fmt.Fprintf(stdout, "serveload: %d events in %v (drain %v)\n", requests,
		time.Since(start).Round(time.Millisecond), time.Since(drainStart).Round(time.Millisecond))
	var kindNames []string
	for k := range h.events {
		kindNames = append(kindNames, k)
	}
	sort.Strings(kindNames)
	for _, k := range kindNames {
		fmt.Fprintf(stdout, "  %-16s %d\n", k, h.events[k])
	}
	for _, c := range []string{"serve.accepted", "serve.completed", "serve.rejected.overload",
		"serve.rejected.malformed", "serve.rejected.oversized", "serve.panics", "serve.canceled"} {
		fmt.Fprintf(stdout, "  %-28s %d\n", c, snap.Counters[c])
	}
	if snap.Counters["serve.panics"] == 0 {
		h.fail("chaos schedule never exercised the panic-isolation path")
	}
	if snap.Counters["serve.rejected.overload"] == 0 {
		h.fail("chaos schedule never exercised admission control")
	}
	if len(h.violations) > 0 {
		return fmt.Errorf("%d violation(s)", len(h.violations))
	}
	fmt.Fprintln(stdout, "serveload: all invariants held")
	return nil
}

// submitJob posts one request to the durable-job endpoint. Both 202
// (new job) and 200 (already known — the idempotent resubmission path)
// are success.
func submitJob(ctx context.Context, httpc *http.Client, base string, req serve.CheckRequest) (serve.JobStatus, error) {
	var st serve.JobStatus
	body, err := json.Marshal(req)
	if err != nil {
		return st, err
	}
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, base+"/v1/jobs", bytes.NewReader(body))
	if err != nil {
		return st, err
	}
	hreq.Header.Set("Content-Type", "application/json")
	resp, err := httpc.Do(hreq)
	if err != nil {
		return st, err
	}
	defer resp.Body.Close()
	rb, err := io.ReadAll(io.LimitReader(resp.Body, 16<<20))
	if err != nil {
		return st, err
	}
	if resp.StatusCode != http.StatusAccepted && resp.StatusCode != http.StatusOK {
		return st, fmt.Errorf("submit: status %d: %s", resp.StatusCode, rb)
	}
	if err := json.Unmarshal(rb, &st); err != nil {
		return st, fmt.Errorf("submit: decode: %w", err)
	}
	if st.ID == "" {
		return st, fmt.Errorf("submit: empty job id in %s", rb)
	}
	return st, nil
}

// pollJob polls the job until it reports done or ctx expires.
func pollJob(ctx context.Context, httpc *http.Client, base, id string) (*serve.CheckResponse, error) {
	for {
		hreq, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/v1/jobs/"+id, nil)
		if err != nil {
			return nil, err
		}
		resp, err := httpc.Do(hreq)
		if err == nil {
			rb, rerr := io.ReadAll(io.LimitReader(resp.Body, 16<<20))
			resp.Body.Close()
			if rerr == nil && resp.StatusCode == http.StatusOK {
				var st serve.JobStatus
				if err := json.Unmarshal(rb, &st); err == nil && st.State == serve.JobDone {
					if st.Response == nil {
						return nil, fmt.Errorf("job %s done without a response", id)
					}
					return st.Response, nil
				}
			}
		}
		select {
		case <-ctx.Done():
			return nil, fmt.Errorf("job %s: %w", id, ctx.Err())
		case <-time.After(25 * time.Millisecond):
		}
	}
}

// jobRequest builds the corpus request a job mode submits; submit and
// collect must build byte-identical requests so the content-addressed
// ids line up across process restarts.
func jobRequest(m corpusModel) serve.CheckRequest {
	return serve.CheckRequest{CSPM: m.source, Budget: &oracleBudget}
}

// runSubmit enqueues the corpus as durable jobs and exits without
// waiting — the server may then be SIGKILLed mid-run by the caller.
func runSubmit(addr string, corpus []corpusModel, stdout io.Writer) error {
	base := strings.TrimRight(addr, "/")
	httpc := &http.Client{Timeout: 30 * time.Second}
	ctx := context.Background()
	for _, m := range corpus {
		st, err := submitJob(ctx, httpc, base, jobRequest(m))
		if err != nil {
			return fmt.Errorf("submit %s: %w", m.name, err)
		}
		fmt.Fprintf(stdout, "submitted %-20s %s (%s)\n", m.name, st.ID, st.State)
	}
	fmt.Fprintf(stdout, "submit ok: %d jobs\n", len(corpus))
	return nil
}

// runCollect resubmits the corpus (idempotent: same content-addressed
// ids), waits for every job to finish and diffs the verdicts against
// the oracle — run it against a server that was killed and restarted to
// prove no verdict changed across the crash.
func runCollect(addr string, corpus []corpusModel, stdout io.Writer) error {
	base := strings.TrimRight(addr, "/")
	httpc := &http.Client{Timeout: 30 * time.Second}
	h := &harness{base: base, httpc: httpc, corpus: corpus, events: map[string]int{}, stdout: stdout}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()
	for _, m := range corpus {
		st, err := submitJob(ctx, httpc, base, jobRequest(m))
		if err != nil {
			return fmt.Errorf("collect %s: %w", m.name, err)
		}
		resp, err := pollJob(ctx, httpc, base, st.ID)
		if err != nil {
			return fmt.Errorf("collect %s: %w", m.name, err)
		}
		if resp.Error != "" {
			h.fail("collect %s: server error %q", m.name, resp.Error)
			continue
		}
		h.compareVerdicts(m.name, resp.Results, m.expected)
		fmt.Fprintf(stdout, "collected %-20s %d assertion(s) match\n", m.name, len(resp.Results))
	}
	if len(h.violations) > 0 {
		return fmt.Errorf("%d violation(s)", len(h.violations))
	}
	fmt.Fprintf(stdout, "collect ok: %d jobs, verdicts identical to in-process checks\n", len(corpus))
	return nil
}

// crashServer is one life of the self-hosted durable server in crash
// mode.
type crashServer struct {
	srv     *serve.Server
	httpSrv *http.Server
	base    string
	obs     *obs.Observer
	done    chan struct{}
}

func bootCrashServer(dataDir string) (*crashServer, error) {
	observer := obs.New()
	srv := serve.New(serve.Config{
		Workers:               2,
		MaxDuration:           60 * time.Second,
		DataDir:               dataDir,
		CheckpointEveryLevels: 1,
		Obs:                   observer,
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		srv.Kill()
		return nil, err
	}
	cs := &crashServer{
		srv:     srv,
		httpSrv: &http.Server{Handler: srv.Handler()},
		base:    "http://" + ln.Addr().String(),
		obs:     observer,
		done:    make(chan struct{}),
	}
	go func() {
		defer close(cs.done)
		defer func() { _ = recover() }()
		_ = cs.httpSrv.Serve(ln)
	}()
	return cs, nil
}

// kill tears this life down the crash way: jobs aborted mid-level,
// verdicts discarded, connections severed — nothing drained.
func (cs *crashServer) kill() {
	cs.srv.Kill()
	_ = cs.httpSrv.Close()
	<-cs.done
}

// runCrash is the kill/restart/resume schedule: a durable server is
// killed at randomized delays while corpus and heavy jobs run, and
// after the last reboot every job must converge to verdicts
// byte-identical to the oracle.
func runCrash(seed int64, kills int, verbose bool, corpus []corpusModel, stdout io.Writer) error {
	rng := rand.New(rand.NewSource(seed))
	dataDir, err := os.MkdirTemp("", "serveload-crash-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dataDir)

	// Heavy never-cached jobs so the kills land mid-exploration, plus the
	// full corpus for verdict breadth. Oracle verdicts come from the same
	// independent path the other modes use.
	jobs := make([]corpusModel, 0, len(corpus)+3)
	jobs = append(jobs, corpus...)
	for i := 0; i < 3; i++ {
		src := heavyModel(9000+int(seed)*10+i, 13)
		exp, err := expectVerdicts(src)
		if err != nil {
			return fmt.Errorf("heavy oracle: %w", err)
		}
		jobs = append(jobs, corpusModel{name: fmt.Sprintf("heavy-%d", i), source: src, expected: exp})
	}

	h := &harness{rng: rng, corpus: corpus, verbose: verbose, events: map[string]int{}, stdout: stdout}
	httpc := &http.Client{Timeout: 30 * time.Second}
	h.httpc = httpc

	cs, err := bootCrashServer(dataDir)
	if err != nil {
		return err
	}
	ctx := context.Background()
	for _, m := range jobs {
		if _, err := submitJob(ctx, httpc, cs.base, jobRequest(m)); err != nil {
			cs.kill()
			return fmt.Errorf("crash submit %s: %w", m.name, err)
		}
	}

	var recovered int64
	for i := 0; i < kills; i++ {
		delay := time.Duration(5+rng.Intn(76)) * time.Millisecond
		time.Sleep(delay)
		cs.kill()
		httpc.CloseIdleConnections()
		h.logf("kill %d after %v", i, delay)
		cs, err = bootCrashServer(dataDir)
		if err != nil {
			return fmt.Errorf("reboot %d: %w", i, err)
		}
		recovered += cs.obs.Counter("serve.jobs.recovered").Value()
	}

	// Last life: every job must finish with oracle verdicts.
	pollCtx, cancel := context.WithTimeout(ctx, 5*time.Minute)
	defer cancel()
	for _, m := range jobs {
		st, err := submitJob(pollCtx, httpc, cs.base, jobRequest(m))
		if err != nil {
			h.fail("crash resubmit %s: %v", m.name, err)
			continue
		}
		resp, err := pollJob(pollCtx, httpc, cs.base, st.ID)
		if err != nil {
			h.fail("crash collect %s: %v", m.name, err)
			continue
		}
		if resp.Error != "" {
			h.fail("crash %s: server error %q", m.name, resp.Error)
			continue
		}
		h.compareVerdicts(m.name, resp.Results, m.expected)
		h.logf("crash %s: %d verdicts ok", m.name, len(resp.Results))
	}
	resumes := cs.obs.Counter("lts.checkpoint.resumes").Value()
	cs.kill()
	httpc.CloseIdleConnections()

	if recovered == 0 {
		h.fail("no reboot ever recovered a pending job — the kill schedule proved nothing")
	}
	if err := leakcheck.Settle(8 * time.Second); err != nil {
		h.fail("%v", err)
	}
	if len(h.violations) > 0 {
		return fmt.Errorf("%d violation(s)", len(h.violations))
	}
	fmt.Fprintf(stdout, "crash ok: %d jobs through %d kills (recovered %d pending, %d checkpoint resumes in the last life), verdicts identical to in-process checks\n",
		len(jobs), kills, recovered, resumes)
	return nil
}
