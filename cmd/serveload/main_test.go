package main

import (
	"bytes"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/serve"
)

// TestSmokeModeAgainstInProcessServer runs the -smoke mode — the CI
// step normally pointed at an external fdrserve — against an in-process
// server, covering the flag wiring, the corpus build, the verdict diff
// and the health probe.
func TestSmokeModeAgainstInProcessServer(t *testing.T) {
	if testing.Short() {
		t.Skip("smoke mode checks the whole OTA corpus")
	}
	srv := serve.New(serve.Config{Workers: 2})
	defer srv.Kill()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	var out bytes.Buffer
	if err := run([]string{"-smoke", "-addr", ts.URL}, &out); err != nil {
		t.Fatalf("smoke run: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "smoke ok") {
		t.Fatalf("smoke output missing summary:\n%s", out.String())
	}
	// Every corpus model must have been checked and reported.
	for _, name := range []string{"ota", "ota-flawed", "ota-deadlocked", "ota-lossy-hardened", "ota-lossy-naive"} {
		if !strings.Contains(out.String(), name) {
			t.Errorf("smoke output missing corpus model %s:\n%s", name, out.String())
		}
	}
}

// TestSubmitCollectAgainstInProcessServer drives the durable-job modes
// against one in-process server: -submit enqueues without waiting,
// -collect resubmits idempotently and diffs the verdicts.
func TestSubmitCollectAgainstInProcessServer(t *testing.T) {
	if testing.Short() {
		t.Skip("job modes check the whole OTA corpus")
	}
	srv := serve.New(serve.Config{Workers: 2, DataDir: t.TempDir()})
	defer srv.Kill()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	var out bytes.Buffer
	if err := run([]string{"-submit", "-addr", ts.URL}, &out); err != nil {
		t.Fatalf("submit run: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "submit ok: 5 jobs") {
		t.Fatalf("submit output missing summary:\n%s", out.String())
	}

	out.Reset()
	if err := run([]string{"-collect", "-addr", ts.URL}, &out); err != nil {
		t.Fatalf("collect run: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "collect ok: 5 jobs") {
		t.Fatalf("collect output missing summary:\n%s", out.String())
	}
}

// TestModeFlagValidation pins the argument contract: the external-server
// modes refuse to run without -addr.
func TestModeFlagValidation(t *testing.T) {
	for _, mode := range []string{"-smoke", "-submit", "-collect"} {
		var out bytes.Buffer
		if err := run([]string{mode}, &out); err == nil {
			t.Errorf("%s without -addr did not fail", mode)
		}
	}
}
