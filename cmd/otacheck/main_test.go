package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestFullReport(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-sizes", "2,4"}, &out); err != nil {
		t.Fatal(err)
	}
	report := out.String()
	for _, want := range []string{
		"Table I", "Table II", "Table III",
		"Figure 1", "Figure 2", "Figure 3",
		"Needham-Schroeder", "Scalability",
		"shared-key", "violated",
	} {
		if !strings.Contains(report, want) {
			t.Errorf("report missing %q", want)
		}
	}
}

func TestParseSizes(t *testing.T) {
	sizes, err := parseSizes("2, 8,16")
	if err != nil || len(sizes) != 3 || sizes[2] != 16 {
		t.Errorf("sizes = %v, err = %v", sizes, err)
	}
	if _, err := parseSizes("0"); err == nil {
		t.Error("zero size accepted")
	}
	if _, err := parseSizes("x"); err == nil {
		t.Error("garbage size accepted")
	}
}
