// Command otacheck runs the complete reproduction: every table and
// figure of the paper regenerated from the library (Tables I-III,
// Figures 1-3), plus the shared-key intruder experiment, the
// attack-tree equivalence check, the Needham-Schroeder analysis and the
// scalability sweep.
//
// Usage:
//
//	otacheck [-sizes 2,4,8,16,32]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"repro/internal/experiments"
	"repro/internal/obs"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "otacheck:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("otacheck", flag.ContinueOnError)
	sizesFlag := fs.String("sizes", "2,4,8,16,32", "scalability sweep sizes")
	var obsFlags obs.Flags
	obsFlags.AddFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	sizes, err := parseSizes(*sizesFlag)
	if err != nil {
		return err
	}
	// Observability goes to stderr only, so the report on stdout stays
	// byte-identical with or without it.
	observer, finishObs, err := obsFlags.Build(os.Stderr)
	if err != nil {
		return err
	}
	report, err := experiments.RunAllObs(sizes, observer)
	if _, werr := io.WriteString(stdout, report); werr != nil {
		return werr
	}
	if err != nil {
		return err
	}
	return finishObs()
}

func parseSizes(spec string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		n, err := strconv.Atoi(part)
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("bad size %q", part)
		}
		out = append(out, n)
	}
	return out, nil
}
