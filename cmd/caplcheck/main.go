// Command caplcheck runs the caplint static analyzer over CAPL
// sources: the front gate of the paper's Figure 1 pipeline. It reports
// symbol errors, dataflow findings (unreachable code, dead stores,
// uninitialised reads), timer-protocol violations, CAN-database
// mismatches and translation-soundness lints, each with a stable
// CAPLnnnn code.
//
// Usage:
//
//	caplcheck [-dbc ota.dbc] [-json] [-severity error|warning|info] node.can...
//	caplcheck -catalog
//
// The exit status is 0 when no finding reaches the -severity gate
// (default: error), 1 when at least one does, and 2 on usage or I/O
// errors — so CI can gate extraction on a clean analysis.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/candb"
	"repro/internal/caplint"
)

func main() {
	tripped, err := run(os.Args[1:], os.Stdout)
	if err != nil {
		fmt.Fprintln(os.Stderr, "caplcheck:", err)
		os.Exit(2)
	}
	if tripped {
		os.Exit(1)
	}
}

// run executes the check, reporting whether any finding reached the
// severity gate.
func run(args []string, stdout io.Writer) (tripped bool, err error) {
	fs := flag.NewFlagSet("caplcheck", flag.ContinueOnError)
	dbcPath := fs.String("dbc", "", "CAN database (.dbc) to cross-check messages and signals against")
	jsonOut := fs.Bool("json", false, "emit diagnostics as a JSON array")
	gate := fs.String("severity", "error", "minimum severity that fails the check (error, warning or info)")
	catalog := fs.Bool("catalog", false, "print the lint catalog and exit")
	if err := fs.Parse(args); err != nil {
		return false, err
	}
	if *catalog {
		printCatalog(stdout)
		return false, nil
	}
	min, err := caplint.ParseSeverity(*gate)
	if err != nil {
		return false, err
	}
	if fs.NArg() == 0 {
		return false, fmt.Errorf("expected at least one CAPL source file")
	}
	var db *candb.Database
	if *dbcPath != "" {
		src, err := os.ReadFile(*dbcPath)
		if err != nil {
			return false, err
		}
		db, err = candb.Parse(string(src))
		if err != nil {
			return false, err
		}
	}

	var all []caplint.Diagnostic
	for _, path := range fs.Args() {
		src, err := os.ReadFile(path)
		if err != nil {
			return false, err
		}
		all = append(all, caplint.AnalyzeSource(path, string(src), caplint.Options{DB: db})...)
	}

	if *jsonOut {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if all == nil {
			all = []caplint.Diagnostic{}
		}
		if err := enc.Encode(all); err != nil {
			return false, err
		}
	} else {
		for _, d := range all {
			fmt.Fprintln(stdout, d)
		}
		errs, warns := caplint.ErrorCount(all), 0
		for _, d := range all {
			if d.Severity == caplint.SevWarning {
				warns++
			}
		}
		fmt.Fprintf(stdout, "%d finding(s): %d error(s), %d warning(s)\n", len(all), errs, warns)
	}
	return len(caplint.Filter(all, min)) > 0, nil
}

func printCatalog(w io.Writer) {
	fmt.Fprintf(w, "%-9s %-8s %s\n", "CODE", "SEVERITY", "DESCRIPTION")
	for _, e := range caplint.Catalog() {
		fmt.Fprintf(w, "%-9s %-8s %s\n", e.Code, e.Severity, e.Title)
	}
}
