package main

import (
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/caplint"
)

func TestRunCleanCorpus(t *testing.T) {
	var out strings.Builder
	tripped, err := run([]string{
		"-dbc", "../../testdata/ota.dbc",
		"-severity", "info",
		"../../testdata/ecu.can",
		"../../testdata/vmg_timer.can",
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if tripped {
		t.Errorf("clean corpus tripped the gate:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "0 finding(s)") {
		t.Errorf("summary missing:\n%s", out.String())
	}
}

func TestRunFlawedGateway(t *testing.T) {
	var out strings.Builder
	tripped, err := run([]string{
		"-dbc", "../../testdata/ota.dbc",
		"../../examples/caplcheck/flawed_gateway.can",
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !tripped {
		t.Fatal("seeded defects did not trip the error gate")
	}
	for _, code := range []string{
		caplint.CodeUndeclared,    // output(fwChunk)
		caplint.CodeUnreachable,   // statement after return
		caplint.CodeDeadStore,     // budget never read
		caplint.CodeUnknownFunc,   // logDiagnostics()
		caplint.CodeOrphanTimer,   // retryTimer has no handler
		caplint.CodeUnfiredTimer,  // uploadTimer never set
		caplint.CodeDBUnknownMsg,  // debugTrace not in ota.dbc
		caplint.CodeDBSignalWidth, // Counter = 300
	} {
		if !strings.Contains(out.String(), "["+code+"]") {
			t.Errorf("missing seeded code %s:\n%s", code, out.String())
		}
	}
}

func TestRunJSON(t *testing.T) {
	var out strings.Builder
	tripped, err := run([]string{
		"-json",
		"../../examples/caplcheck/flawed_gateway.can",
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !tripped {
		t.Fatal("gate not tripped")
	}
	var diags []caplint.Diagnostic
	if err := json.Unmarshal([]byte(out.String()), &diags); err != nil {
		t.Fatalf("output is not a JSON diagnostic array: %v\n%s", err, out.String())
	}
	if len(diags) == 0 {
		t.Fatal("empty diagnostic array for seeded input")
	}
	for _, d := range diags {
		if d.Code == "" || d.Line <= 0 || d.File == "" {
			t.Errorf("incomplete diagnostic %+v", d)
		}
	}
}

func TestRunJSONCleanIsEmptyArray(t *testing.T) {
	var out strings.Builder
	if _, err := run([]string{"-json", "../../testdata/ecu.can"}, &out); err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(out.String()) != "[]" {
		t.Errorf("clean JSON output = %q, want []", out.String())
	}
}

func TestRunSeverityGate(t *testing.T) {
	// vmg.can is clean at error severity; gating at info must still pass
	// (zero findings), while the flawed file trips even the default gate.
	var out strings.Builder
	tripped, err := run([]string{"-severity", "warning",
		"../../examples/caplcheck/flawed_gateway.can"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !tripped {
		t.Error("warning gate not tripped by seeded warnings")
	}
	if _, err := run([]string{"-severity", "bogus", "../../testdata/ecu.can"}, &out); err == nil {
		t.Error("bogus severity accepted")
	}
}

func TestRunCatalog(t *testing.T) {
	var out strings.Builder
	tripped, err := run([]string{"-catalog"}, &out)
	if err != nil || tripped {
		t.Fatalf("catalog: tripped=%v err=%v", tripped, err)
	}
	for _, e := range caplint.Catalog() {
		if !strings.Contains(out.String(), e.Code) {
			t.Errorf("catalog missing %s", e.Code)
		}
	}
}

func TestRunUsageErrors(t *testing.T) {
	var out strings.Builder
	if _, err := run(nil, &out); err == nil {
		t.Error("no files accepted")
	}
	if _, err := run([]string{"/nonexistent.can"}, &out); err == nil {
		t.Error("unreadable file accepted")
	}
	if _, err := run([]string{"-dbc", "/nonexistent.dbc", "../../testdata/ecu.can"}, &out); err == nil {
		t.Error("unreadable dbc accepted")
	}
}

func TestRunParseFailure(t *testing.T) {
	var out strings.Builder
	tripped, err := run([]string{"../../internal/capl/testdata/malformed.can"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !tripped {
		t.Error("parse failure did not trip the gate")
	}
	if !strings.Contains(out.String(), "[CAPL0000]") {
		t.Errorf("missing CAPL0000:\n%s", out.String())
	}
}
