package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestDeterministicReports(t *testing.T) {
	args := []string{"-seed", "7", "-reps", "1", "-horizon-ms", "500"}
	var a, b bytes.Buffer
	if err := run(args, &a); err != nil {
		t.Fatal(err)
	}
	if err := run(args, &b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("same seed produced different text reports")
	}

	jsonArgs := append(args, "-format", "json")
	a.Reset()
	b.Reset()
	if err := run(jsonArgs, &a); err != nil {
		t.Fatal(err)
	}
	if err := run(jsonArgs, &b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("same seed produced different JSON reports")
	}
	var decoded map[string]any
	if err := json.Unmarshal(a.Bytes(), &decoded); err != nil {
		t.Fatalf("JSON report does not parse: %v", err)
	}
	if decoded["masterSeed"] != float64(7) {
		t.Errorf("masterSeed = %v, want 7", decoded["masterSeed"])
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	var a, b bytes.Buffer
	if err := run([]string{"-seed", "1", "-reps", "1", "-horizon-ms", "500", "-format", "json"}, &a); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-seed", "2", "-reps", "1", "-horizon-ms", "500", "-format", "json"}, &b); err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("different seeds produced identical reports")
	}
}

func TestVariantFilterAndScale(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-reps", "2", "-horizon-ms", "500", "-variant", "hardened"}, &out); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	if strings.Contains(text, "naive variant:") {
		t.Error("naive outcomes present despite -variant hardened")
	}
	// 16 matrix cells x 1 variant x 2 reps.
	if !strings.Contains(text, "fault campaign: 32 scenarios") {
		t.Errorf("unexpected scenario count:\n%s", text)
	}
	// The default full matrix must satisfy the >= 50 scenario floor.
	out.Reset()
	if err := run([]string{"-horizon-ms", "300"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "fault campaign: 64 scenarios") {
		t.Errorf("default matrix is not 64 scenarios:\n%s", firstLine(out.String()))
	}
}

func TestModelChecksFlipTable(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-reps", "1", "-horizon-ms", "300", "-model"}, &out); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	naive, hardened, ok := strings.Cut(text, "naive gateway:")
	if !ok {
		t.Fatalf("missing naive gateway section:\n%s", text)
	}
	_ = naive
	hardenedIdx := strings.Index(hardened, "hardened (retry) gateway:")
	if hardenedIdx < 0 {
		t.Fatalf("missing hardened gateway section:\n%s", text)
	}
	naiveSection, hardenedSection := hardened[:hardenedIdx], hardened[hardenedIdx:]
	if !strings.Contains(naiveSection, "FAIL") {
		t.Error("naive gateway model checks should contain failures")
	}
	if strings.Contains(hardenedSection, "FAIL") {
		t.Errorf("hardened gateway model checks should all pass:\n%s", hardenedSection)
	}
}

func TestBadFlags(t *testing.T) {
	for _, args := range [][]string{
		{"-format", "xml"},
		{"-variant", "spicy"},
		{"-horizon-ms", "0"},
	} {
		if err := run(args, &bytes.Buffer{}); err == nil {
			t.Errorf("args %v: expected error", args)
		}
	}
}

func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i]
	}
	return s
}
