// Command faultcheck runs the seeded fault-injection campaign over the
// simulated OTA network and, optionally, the lossy-channel refinement
// checks that back the campaign's findings with formal counterexamples.
// The campaign is deterministic: the same seed always produces a
// byte-identical report.
//
// Usage:
//
//	faultcheck [-seed 42] [-format text|json] [-horizon-ms 3000]
//	           [-cycles 3] [-reps 2] [-variant both|naive|hardened]
//	           [-model] [-loss 2] [-max-states 262144] [-workers 0]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/canbus"
	"repro/internal/faultcampaign"
	"repro/internal/fdr"
	"repro/internal/lts"
	"repro/internal/obs"
	"repro/internal/ota"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "faultcheck:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("faultcheck", flag.ContinueOnError)
	seed := fs.Int64("seed", 42, "campaign master seed")
	format := fs.String("format", "text", "report format: text or json")
	horizonMS := fs.Int64("horizon-ms", 3000, "per-scenario simulated horizon in milliseconds")
	cycles := fs.Int("cycles", 3, "applied-update cycles required for convergence")
	reps := fs.Int("reps", 2, "seed replicas per matrix cell")
	variant := fs.String("variant", "both", "protocol variants: both, naive or hardened")
	model := fs.Bool("model", false, "also run the lossy-channel refinement checks")
	loss := fs.Int("loss", ota.DefaultLossBudget, "per-direction loss budget of the model checks")
	maxStates := fs.Int("max-states", 1<<18, "state bound for the refinement checks")
	workers := fs.Int("workers", 0, "concurrent scenarios (0: all cores); reports are byte-identical at any worker count")
	var obsFlags obs.Flags
	obsFlags.AddFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	// Validate every flag before the (multi-second) campaign runs.
	if *horizonMS <= 0 {
		return fmt.Errorf("horizon must be positive, got %dms", *horizonMS)
	}
	if *format != "text" && *format != "json" {
		return fmt.Errorf("unknown format %q (want text or json)", *format)
	}
	if *reps < 1 {
		return fmt.Errorf("reps must be at least 1, got %d", *reps)
	}
	if *loss < 0 {
		return fmt.Errorf("loss budget must be >= 0, got %d", *loss)
	}
	if *workers < 0 {
		return fmt.Errorf("workers must be >= 0, got %d", *workers)
	}

	// Observability goes to stderr only, so reports on stdout stay
	// byte-identical with or without it.
	observer, finishObs, err := obsFlags.Build(os.Stderr)
	if err != nil {
		return err
	}

	cfg := faultcampaign.Config{
		Seed:         *seed,
		SeedsPerCase: *reps,
		Horizon:      canbus.Time(*horizonMS) * canbus.Millisecond,
		TargetCycles: *cycles,
		Workers:      *workers,
		Obs:          observer,
	}
	switch *variant {
	case "both", "":
	case "naive":
		cfg.Variants = []faultcampaign.Variant{faultcampaign.Naive}
	case "hardened":
		cfg.Variants = []faultcampaign.Variant{faultcampaign.Hardened}
	default:
		return fmt.Errorf("unknown variant %q (want both, naive or hardened)", *variant)
	}

	report := faultcampaign.Run(cfg)
	switch *format {
	case "text":
		if _, err := io.WriteString(stdout, report.Text()); err != nil {
			return err
		}
	case "json":
		data, err := report.JSON()
		if err != nil {
			return err
		}
		if _, err := stdout.Write(append(data, '\n')); err != nil {
			return err
		}
	}

	if *model {
		if err := runModelChecks(stdout, *loss, *maxStates, *workers, observer); err != nil {
			return err
		}
	}
	return finishObs()
}

// runModelChecks runs the lossy-channel assertions for both gateway
// variants and prints the pass/fail table that turns the campaign's
// simulation evidence into a refinement-checked robustness claim. One
// LTS cache is shared per variant, so the spec and system terms the six
// assertions have in common are explored once.
func runModelChecks(stdout io.Writer, lossBudget, maxStates, workers int, observer *obs.Observer) error {
	fmt.Fprintf(stdout, "\nlossy-channel refinement checks (loss budget %d per direction):\n", lossBudget)
	for _, variant := range []ota.LossyVariant{ota.NaiveGateway, ota.HardenedGateway} {
		sys, err := ota.BuildLossy(variant, lossBudget)
		if err != nil {
			return err
		}
		cache := lts.NewCache()
		cache.Obs = observer
		bgt := fdr.Budget{MaxStates: maxStates, Workers: workers, Cache: cache, Obs: observer}
		fmt.Fprintf(stdout, "\n%s:\n", variant)
		for i, a := range sys.Model.Asserts {
			res, err := ota.CheckAssertionBudget(sys, i, bgt)
			if err != nil {
				return fmt.Errorf("%s: assertion %d: %w", variant, i, err)
			}
			status := "PASS"
			if !res.Holds {
				status = "FAIL"
			}
			fmt.Fprintf(stdout, "  %-4s  %s\n", status, a.Text)
			if !res.Holds && len(res.Counterexample) > 0 {
				fmt.Fprintf(stdout, "        counterexample: %v\n", res.Counterexample)
			}
		}
	}
	return nil
}
