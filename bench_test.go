// Package repro's benchmark harness regenerates every table and figure
// of the paper (see DESIGN.md's per-experiment index) and measures the
// substrate components. Run with:
//
//	go test -bench=. -benchmem
package repro_test

import (
	"fmt"
	"runtime"
	"testing"

	"repro/internal/attack"
	"repro/internal/canbus"
	"repro/internal/candb"
	"repro/internal/canoe"
	"repro/internal/capl"
	"repro/internal/csp"
	"repro/internal/cspm"
	"repro/internal/experiments"
	"repro/internal/faultcampaign"
	"repro/internal/lts"
	"repro/internal/ota"
	"repro/internal/refine"
	"repro/internal/statestore"
	"repro/internal/translate"
)

// --- Paper tables ----------------------------------------------------------

// BenchmarkTableI_CSPmRoundTrip regenerates Table I: every CSPm operator
// parsed and round-tripped through the front-end.
func BenchmarkTableI_CSPmRoundTrip(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.TableI(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTableII_MessageTypes regenerates Table II from the case-study
// metadata.
func BenchmarkTableII_MessageTypes(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := experiments.TableII()
		if err != nil {
			b.Fatal(err)
		}
		if len(t.Rows) != 4 {
			b.Fatal("wrong table")
		}
	}
}

// BenchmarkTableIII_Requirements regenerates Table III: all five
// requirements checked by refinement on both the correct and the flawed
// system.
func BenchmarkTableIII_Requirements(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.TableIII(); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Paper figures ------------------------------------------------------------

// BenchmarkFigure1_Pipeline runs the complete Figure 1 workflow: CAPL
// parse, model extraction, composition, evaluation, three assertions,
// and the simulation cross-validation.
func BenchmarkFigure1_Pipeline(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure1()
		if err != nil {
			b.Fatal(err)
		}
		if !res.CrossValidated {
			b.Fatal("cross-validation failed")
		}
	}
}

// BenchmarkFigure2_SystemCheck checks the Figure 2 composed system for
// the three implementation variants.
func BenchmarkFigure2_SystemCheck(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure2(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure3_Translate regenerates the Figure 3 artefact (the
// extracted ECU CSPm model).
func BenchmarkFigure3_Translate(b *testing.B) {
	for i := 0; i < b.N; i++ {
		text, err := experiments.Figure3()
		if err != nil {
			b.Fatal(err)
		}
		if len(text) == 0 {
			b.Fatal("empty model")
		}
	}
}

// --- Scalability sweep (section VII) ---------------------------------------

// BenchmarkScalability sweeps the refinement check over growing
// application sizes (request/response pairs).
func BenchmarkScalability(b *testing.B) {
	for _, pairs := range []int{2, 4, 8, 16, 32, 64} {
		b.Run(fmt.Sprintf("pairs=%d", pairs), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				pt, err := experiments.ScalabilityRun(pairs)
				if err != nil {
					b.Fatal(err)
				}
				if !pt.Holds {
					b.Fatal("property failed")
				}
			}
		})
	}
}

// --- Attacker experiments ------------------------------------------------------

// BenchmarkSecureVariants runs the R05 shared-key experiment: three
// protections against the Dolev-Yao bus intruder.
func BenchmarkSecureVariants(b *testing.B) {
	for _, v := range []ota.SecureVariant{ota.Naive, ota.MACOnly, ota.MACNonce} {
		b.Run(v.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				m, err := ota.BuildSecure(v)
				if err != nil {
					b.Fatal(err)
				}
				c := refine.NewChecker(m.Env, m.Ctx)
				if _, err := c.RefinesTraces(m.AuthSpec, m.System); err != nil {
					b.Fatal(err)
				}
				if _, err := c.RefinesTraces(m.InjSpec, m.System); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAttackTree_Translate measures the attack-tree-to-CSP
// translation plus the sequence-set equivalence check.
func BenchmarkAttackTree_Translate(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.AttackTree()
		if err != nil {
			b.Fatal(err)
		}
		if !res.Equivalent {
			b.Fatal("translation not equivalent")
		}
	}
}

// BenchmarkNSPK_AttackSearch measures finding Lowe's attack on the
// original Needham-Schroeder protocol.
func BenchmarkNSPK_AttackSearch(b *testing.B) {
	for i := 0; i < b.N; i++ {
		m, err := attack.BuildNSPK(attack.NSPKConfig{})
		if err != nil {
			b.Fatal(err)
		}
		c := refine.NewChecker(m.Env, m.Ctx)
		res, err := c.RefinesTraces(m.AuthSpec, m.System)
		if err != nil {
			b.Fatal(err)
		}
		if res.Holds {
			b.Fatal("attack not found")
		}
	}
}

// BenchmarkNSL_Verification measures verifying the fixed protocol
// (exhaustive exploration, so costlier than finding the attack).
func BenchmarkNSL_Verification(b *testing.B) {
	for i := 0; i < b.N; i++ {
		m, err := attack.BuildNSPK(attack.NSPKConfig{Fixed: true})
		if err != nil {
			b.Fatal(err)
		}
		c := refine.NewChecker(m.Env, m.Ctx)
		res, err := c.RefinesTraces(m.AuthSpec, m.System)
		if err != nil {
			b.Fatal(err)
		}
		if !res.Holds {
			b.Fatal("NSL rejected")
		}
	}
}

// --- Ablation: product-automaton vs naive trace enumeration --------------------

// BenchmarkAblation_RefinementAlgorithm compares the FDR-style
// normalised product check against naive bounded trace-set enumeration
// on the same query — the design choice DESIGN.md calls out.
func BenchmarkAblation_RefinementAlgorithm(b *testing.B) {
	sys, err := ota.Build()
	if err != nil {
		b.Fatal(err)
	}
	spec := sys.Model.Asserts[ota.AssertR02].Spec
	impl := sys.Model.Asserts[ota.AssertR02].Impl

	b.Run("product-automaton", func(b *testing.B) {
		c := refine.NewChecker(sys.Model.Env, sys.Model.Ctx)
		for i := 0; i < b.N; i++ {
			res, err := c.RefinesTraces(spec, impl)
			if err != nil {
				b.Fatal(err)
			}
			if !res.Holds {
				b.Fatal("check failed")
			}
		}
	})
	b.Run("naive-trace-enumeration", func(b *testing.B) {
		sem := csp.NewSemantics(sys.Model.Env, sys.Model.Ctx)
		const bound = 8
		for i := 0; i < b.N; i++ {
			implTraces, err := csp.Traces(sem, impl, bound)
			if err != nil {
				b.Fatal(err)
			}
			specTraces, err := csp.Traces(sem, spec, bound)
			if err != nil {
				b.Fatal(err)
			}
			if ok, _ := implTraces.SubsetOf(specTraces); !ok {
				b.Fatal("check failed")
			}
		}
	})
}

// --- Substrate microbenchmarks ----------------------------------------------

// BenchmarkCAPLParse measures the CAPL front-end on the ECU program.
func BenchmarkCAPLParse(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := capl.Parse(ota.ECUSource); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTranslateECU measures model extraction alone.
func BenchmarkTranslateECU(b *testing.B) {
	prog, err := capl.Parse(ota.ECUSource)
	if err != nil {
		b.Fatal(err)
	}
	opts := translate.DefaultOptions("ECU")
	opts.MessageRename = ota.MessageRename
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := translate.Translate(prog, opts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCSPMLoad measures parsing + evaluating the combined
// case-study script.
func BenchmarkCSPMLoad(b *testing.B) {
	sys, err := ota.Build()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cspm.Load(sys.Source); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExplore measures LTS construction for the composed lossy
// system (the largest state space of the case study), sequentially and
// with the level-parallel worker pool. The two sub-benchmarks produce
// byte-identical LTSs; on a multi-core host the parallel variant should
// win, on a single core it measures the synchronization overhead.
func BenchmarkExplore(b *testing.B) {
	sys, err := ota.BuildLossy(ota.HardenedGateway, ota.DefaultLossBudget)
	if err != nil {
		b.Fatal(err)
	}
	sem := csp.NewSemantics(sys.Model.Env, sys.Model.Ctx)
	system := csp.Call("SYSTEML")
	// The frozen string-keyed reference engine prices what term
	// interning replaced: every visited-set probe rendered the state's
	// full canonical key string.
	b.Run("stringkeys", func(b *testing.B) {
		states := 0
		for i := 0; i < b.N; i++ {
			l, err := lts.ExploreReference(sem, system, 0)
			if err != nil {
				b.Fatal(err)
			}
			states = l.NumStates()
		}
		b.ReportMetric(float64(states)*float64(b.N)/b.Elapsed().Seconds(), "states/s")
	})
	for _, bc := range []struct {
		name    string
		workers int
	}{
		{"seq", 1},
		{fmt.Sprintf("par-%d", runtime.GOMAXPROCS(0)), 0},
	} {
		b.Run(bc.name, func(b *testing.B) {
			states := 0
			for i := 0; i < b.N; i++ {
				l, err := lts.Explore(sem, system, lts.Options{Workers: bc.workers})
				if err != nil {
					b.Fatal(err)
				}
				states = l.NumStates()
			}
			b.ReportMetric(float64(states)*float64(b.N)/b.Elapsed().Seconds(), "states/s")
		})
	}
	// The spill variant prices memory-pressure mode: the visited index
	// lives in hash-sharded disk files from the first state (watermark
	// 0), the worst case of the disk store. The LTS is byte-identical to
	// the in-memory run.
	b.Run("spill", func(b *testing.B) {
		dir := b.TempDir()
		states := 0
		for i := 0; i < b.N; i++ {
			st := statestore.NewSpill(statestore.SpillConfig{Dir: dir, SoftMemBytes: 0})
			l, err := lts.Explore(sem, system, lts.Options{Workers: 1, Store: st})
			if err != nil {
				b.Fatal(err)
			}
			states = l.NumStates()
			if err := st.Close(); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(states)*float64(b.N)/b.Elapsed().Seconds(), "states/s")
	})
}

// BenchmarkRefines measures a full trace-refinement check of the R02
// assertion, cold (every iteration explores both terms afresh) and
// cached (a shared lts.Cache serves the explorations after the first
// iteration) — the campaign-scale speedup of the model cache.
func BenchmarkRefines(b *testing.B) {
	sys, err := ota.Build()
	if err != nil {
		b.Fatal(err)
	}
	spec := sys.Model.Asserts[ota.AssertR02].Spec
	impl := sys.Model.Asserts[ota.AssertR02].Impl
	b.Run("cold", func(b *testing.B) {
		c := refine.NewChecker(sys.Model.Env, sys.Model.Ctx)
		for i := 0; i < b.N; i++ {
			res, err := c.RefinesTraces(spec, impl)
			if err != nil {
				b.Fatal(err)
			}
			if !res.Holds {
				b.Fatal("check failed")
			}
		}
	})
	b.Run("cached", func(b *testing.B) {
		c := refine.NewChecker(sys.Model.Env, sys.Model.Ctx)
		c.Cache = lts.NewCache()
		if _, err := c.RefinesTraces(spec, impl); err != nil {
			b.Fatal(err) // prime the cache outside the timed loop
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			res, err := c.RefinesTraces(spec, impl)
			if err != nil {
				b.Fatal(err)
			}
			if !res.Holds {
				b.Fatal("check failed")
			}
		}
	})
}

// BenchmarkNormalize measures the subset construction.
func BenchmarkNormalize(b *testing.B) {
	sys, err := ota.Build()
	if err != nil {
		b.Fatal(err)
	}
	sem := csp.NewSemantics(sys.Model.Env, sys.Model.Ctx)
	l, err := lts.Explore(sem, csp.Call("SYSTEM"), lts.Options{})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if n := lts.Normalize(l); n.NumNodes() == 0 {
			b.Fatal("empty normalisation")
		}
	}
}

// BenchmarkCANBusThroughput measures the bus simulator delivering
// frames between two nodes.
func BenchmarkCANBusThroughput(b *testing.B) {
	bus := canbus.New(canbus.Config{})
	tap := bus.Attach("tx", canbus.ReceiverFunc(func(canbus.Time, canbus.Frame) {}))
	bus.Attach("rx", canbus.ReceiverFunc(func(canbus.Time, canbus.Frame) {}))
	frame := canbus.Frame{ID: 0x123, Data: []byte{1, 2, 3, 4, 5, 6, 7, 8}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := bus.Transmit(tap, frame); err != nil {
			b.Fatal(err)
		}
		bus.RunAll(4)
	}
}

// BenchmarkCanoeSimulation measures the CAPL runtime executing the
// case-study measurement for 1 simulated millisecond.
func BenchmarkCanoeSimulation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sim := canoe.NewSimulation(canbus.Config{})
		if _, err := sim.AddNode("ECU", ota.ECUSource); err != nil {
			b.Fatal(err)
		}
		if _, err := sim.AddNode("VMG", ota.VMGSource); err != nil {
			b.Fatal(err)
		}
		if err := sim.Start(); err != nil {
			b.Fatal(err)
		}
		if err := sim.Run(canbus.Millisecond); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDBCParse measures the CAN database parser.
func BenchmarkDBCParse(b *testing.B) {
	src := otaDBC()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := candb.Parse(src); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSignalCodec measures signal encode/decode round trips.
func BenchmarkSignalCodec(b *testing.B) {
	s := &candb.Signal{Name: "S", StartBit: 4, Length: 12, LittleEndian: true, Factor: 1}
	data := make([]byte, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.EncodeRaw(data, int64(i&0xFFF)); err != nil {
			b.Fatal(err)
		}
		if s.DecodeRaw(data) != int64(i&0xFFF) {
			b.Fatal("codec mismatch")
		}
	}
}

// BenchmarkFaultCampaign measures end-to-end fault-campaign throughput:
// a fixed-seed 32-scenario sweep (every fault kind, both protocol
// variants, 500 ms horizon per scenario), sequentially and with the
// scenario worker pool. Reports are byte-identical in both modes.
func BenchmarkFaultCampaign(b *testing.B) {
	for _, bc := range []struct {
		name    string
		workers int
	}{
		{"workers=1", 1},
		{fmt.Sprintf("workers=%d", runtime.GOMAXPROCS(0)), 0},
	} {
		b.Run(bc.name, func(b *testing.B) {
			cfg := faultcampaign.Config{
				Seed:         42,
				SeedsPerCase: 1,
				Horizon:      500 * canbus.Millisecond,
				Workers:      bc.workers,
			}
			n := len(faultcampaign.Matrix(cfg))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rep := faultcampaign.Run(cfg)
				if rep.Scenarios != n {
					b.Fatalf("ran %d scenarios, want %d", rep.Scenarios, n)
				}
				if rep.Errored != 0 {
					b.Fatalf("%d scenarios errored", rep.Errored)
				}
			}
			b.ReportMetric(float64(n), "scenarios/op")
		})
	}
}

func otaDBC() string {
	return `VERSION "1.0"
BU_: VMG ECU
BO_ 257 SwInventoryReq: 8 VMG
 SG_ Counter : 0|8@1+ (1,0) [0|255] "" ECU
BO_ 258 SwInventoryRpt: 8 ECU
 SG_ Status : 0|4@1+ (1,0) [0|15] "" VMG
`
}
