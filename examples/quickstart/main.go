// Quickstart: build a small CSP model in Go and check the paper's SP_02
// integrity property with the refinement checker — the core workflow in
// a dozen lines.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/csp"
	"repro/internal/refine"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// Declarations: datatype Msgs = reqSw | rptSw; channel send, rec : Msgs.
	ctx := csp.NewContext()
	msgs := csp.EnumType("Msgs", "reqSw", "rptSw", "reqApp", "rptUpd")
	if err := ctx.DeclareType("Msgs", msgs); err != nil {
		return err
	}
	if err := ctx.DeclareChannel("send", msgs); err != nil {
		return err
	}
	if err := ctx.DeclareChannel("rec", msgs); err != nil {
		return err
	}

	env := csp.NewEnv()
	// SP02 = send.reqSw -> rec.rptSw -> SP02 (the paper's property).
	env.MustDefine("SP02", nil,
		csp.Send("send", csp.Send("rec", csp.Call("SP02"), csp.Sym("rptSw")), csp.Sym("reqSw")))
	// A correct ECU and a flawed one that replies with the wrong message.
	env.MustDefine("ECU", nil,
		csp.Send("send", csp.Send("rec", csp.Call("ECU"), csp.Sym("rptSw")), csp.Sym("reqSw")))
	env.MustDefine("BADECU", nil,
		csp.Send("send", csp.Send("rec", csp.Call("BADECU"), csp.Sym("rptUpd")), csp.Sym("reqSw")))

	checker := refine.NewChecker(env, ctx)

	res, err := checker.RefinesTraces(csp.Call("SP02"), csp.Call("ECU"))
	if err != nil {
		return err
	}
	fmt.Printf("SP02 [T= ECU:    holds=%v\n", res.Holds)

	res, err = checker.RefinesTraces(csp.Call("SP02"), csp.Call("BADECU"))
	if err != nil {
		return err
	}
	fmt.Printf("SP02 [T= BADECU: holds=%v counterexample=%s\n", res.Holds, res.Counterexample)

	// Deadlock freedom of the composed system.
	system := csp.Par(csp.Call("ECU"), csp.EventsOf("send", "rec"), csp.Call("SP02"))
	res, err = checker.DeadlockFree(system)
	if err != nil {
		return err
	}
	fmt.Printf("SYSTEM deadlock free: %v (%d states)\n", res.Holds, res.ImplStates)
	return nil
}
