// Simulation: run the case-study CAPL node programs on the simulated
// CAN bus (the CANoe stand-in), print the measured bus trace, and
// cross-validate it against the extracted CSP model — closing the loop
// between simulation and formal verification.
//
//	go run ./examples/simulation
package main

import (
	"fmt"
	"log"

	"repro/internal/canbus"
	"repro/internal/canoe"
	"repro/internal/core"
	"repro/internal/csp"
	"repro/internal/ota"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	fmt.Println("== Simulated CANoe measurement (2 ms at 500 kbit/s) ==")
	sim := canoe.NewSimulation(canbus.Config{BitRate: 500_000})
	if _, err := sim.AddNode("ECU", ota.ECUSource); err != nil {
		return err
	}
	if _, err := sim.AddNode("VMG", ota.VMGSource); err != nil {
		return err
	}
	if err := sim.Start(); err != nil {
		return err
	}
	if err := sim.Run(2 * canbus.Millisecond); err != nil {
		return err
	}
	for _, tf := range sim.Trace() {
		fmt.Printf("  %6d us  %s\n", tf.At, tf.Frame)
	}
	fmt.Printf("bus load: %.1f%%\n", sim.Bus.Load()*100)

	fmt.Println("\n== Cross-validation against the extracted CSP model ==")
	pipeline := &core.Pipeline{
		Nodes: []core.NodeSpec{
			{Name: "ECU", Source: ota.ECUSource, In: "send", Out: "rec", Rename: ota.MessageRename},
			{Name: "VMG", Source: ota.VMGSource, In: "rec", Out: "send", Rename: ota.MessageRename},
		},
		Spec: "SYSTEM = VMG [| {| send, rec |} |] ECU\nassert SYSTEM :[deadlock free]\n",
	}
	report, err := pipeline.Run()
	if err != nil {
		return err
	}
	mapping := core.FrameMapping{
		0x101: csp.Ev("send", csp.Sym("reqSw")),
		0x102: csp.Ev("rec", csp.Sym("rptSw")),
		0x103: csp.Ev("send", csp.Sym("reqApp")),
		0x104: csp.Ev("rec", csp.Sym("rptUpd")),
	}
	observed, err := pipeline.CrossValidate(report.Model, csp.Call("SYSTEM"), mapping, 2*canbus.Millisecond)
	if err != nil {
		return err
	}
	fmt.Printf("observed %d events; trace is a trace of the model: yes\n", len(observed))
	fmt.Println("  ", observed)
	return nil
}
