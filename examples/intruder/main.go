// Intruder analysis: compose the OTA update protocol with a Dolev-Yao
// CAN-bus attacker and watch the three protections (plaintext,
// shared-key MAC, MAC+nonce) succeed or fail — then reproduce Lowe's
// classic attack on Needham-Schroeder, the paper's motivating example.
//
//	go run ./examples/intruder
package main

import (
	"fmt"
	"log"

	"repro/internal/attack"
	"repro/internal/ota"
	"repro/internal/refine"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	fmt.Println("== Shared-key update protocol vs a CAN bus attacker (R05) ==")
	for _, v := range []ota.SecureVariant{ota.Naive, ota.MACOnly, ota.MACNonce} {
		m, err := ota.BuildSecure(v)
		if err != nil {
			return err
		}
		c := refine.NewChecker(m.Env, m.Ctx)
		auth, err := c.RefinesTraces(m.AuthSpec, m.System)
		if err != nil {
			return err
		}
		inj, err := c.RefinesTraces(m.InjSpec, m.System)
		if err != nil {
			return err
		}
		fmt.Printf("\n%s (intruder: %d knowledge states)\n", v, m.IntruderStates)
		report("  injection resistance", auth.Holds, auth.Counterexample.String())
		report("  replay resistance   ", inj.Holds, inj.Counterexample.String())
	}

	fmt.Println("\n== Needham-Schroeder public key (section II-B) ==")
	nspk, err := attack.BuildNSPK(attack.NSPKConfig{})
	if err != nil {
		return err
	}
	c := refine.NewChecker(nspk.Env, nspk.Ctx)
	res, err := c.RefinesTraces(nspk.AuthSpec, nspk.System)
	if err != nil {
		return err
	}
	report("original protocol", res.Holds, res.Counterexample.String())
	if !res.Holds {
		fmt.Println("  (Lowe's man-in-the-middle: B commits to A although A only ever talked to the intruder)")
	}

	nsl, err := attack.BuildNSPK(attack.NSPKConfig{Fixed: true})
	if err != nil {
		return err
	}
	c = refine.NewChecker(nsl.Env, nsl.Ctx)
	res, err = c.RefinesTraces(nsl.AuthSpec, nsl.System)
	if err != nil {
		return err
	}
	report("with Lowe's fix  ", res.Holds, res.Counterexample.String())
	return nil
}

func report(label string, holds bool, trace string) {
	if holds {
		fmt.Printf("%s: secure\n", label)
		return
	}
	fmt.Printf("%s: ATTACK %s\n", label, trace)
}
