// Attack trees: translate a reprogramming attack tree into a CSP
// process (section IV-E), enumerate the attack sequences it denotes,
// and search a monitored vehicle model for a complete attack trace.
//
//	go run ./examples/attacktree
package main

import (
	"fmt"
	"log"
	"strings"

	"repro/internal/attack"
	"repro/internal/csp"
	"repro/internal/refine"
	"repro/internal/security"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// Attack goal: reprogram an ECU. Either enter via the OBD port, or
	// compromise the telematics unit and pivot; then reprogram the ECU
	// while suppressing the alarm (in any order).
	tree := attack.Seq{Children: []attack.Tree{
		attack.Or{Children: []attack.Tree{
			attack.Leaf{Action: "accessOBD"},
			attack.Seq{Children: []attack.Tree{
				attack.Leaf{Action: "compromiseTCU"},
				attack.Leaf{Action: "pivotToCAN"},
			}},
		}},
		attack.Par{Children: []attack.Tree{
			attack.Leaf{Action: "reprogramECU"},
			attack.Leaf{Action: "suppressAlarm"},
		}},
	}}

	fmt.Println("attack tree:", tree.Label())
	fmt.Println("\nsequence-set semantics (the paper's ⦅·⦆ function):")
	for _, seq := range attack.Sequences(tree) {
		fmt.Println("  ", strings.Join(seq, " -> "))
	}

	// Translate to CSP and explore.
	ctx := csp.NewContext()
	if err := attack.DeclareActions(ctx, "action", tree); err != nil {
		return err
	}
	env := csp.NewEnv()
	attacker := attack.ToCSP(tree, "action")

	// A defence specification: no ECU reprogramming unless the alarm
	// system observed OBD access first (i.e. unattributed TCU entry must
	// be impossible). Check whether the attacker violates it.
	spec, err := security.Precedence(env, "DEFENCE",
		csp.Ev("action", csp.Sym("accessOBD")),
		csp.Ev("action", csp.Sym("reprogramECU")))
	if err != nil {
		return err
	}
	checker := refine.NewChecker(env, ctx)
	res, err := checker.RefinesTraces(spec, attacker)
	if err != nil {
		return err
	}
	fmt.Printf("\ndefence `reprogram only after OBD access`: holds=%v\n", res.Holds)
	if !res.Holds {
		fmt.Println("attack found:", res.Counterexample)
	}
	return nil
}
