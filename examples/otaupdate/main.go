// OTA update case study: the complete Figure 1 workflow on the paper's
// demonstration system — extract CSPm models from the VMG and ECU CAPL
// programs, compose them with the Table III specification processes,
// check every requirement, and show how the flawed ECU is caught.
//
//	go run ./examples/otaupdate
package main

import (
	"fmt"
	"log"

	"repro/internal/fdr"
	"repro/internal/ota"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	fmt.Println("== Extracting models from CAPL (Figure 1 pipeline) ==")
	sys, err := ota.Build()
	if err != nil {
		return err
	}
	fmt.Println("\n-- Generated ECU implementation model (Figure 3) --")
	fmt.Print(sys.ECUText)

	fmt.Println("\n== Checking Table III requirements ==")
	results, err := ota.CheckRequirements(sys, 0)
	if err != nil {
		return err
	}
	for _, r := range results {
		status := "holds"
		if !r.Holds {
			status = "VIOLATED " + r.Result.Counterexample.String()
		}
		fmt.Printf("%s [%s] %s\n", r.Req.ID, status, r.Req.Text)
	}

	fmt.Println("\n== All assertions on the correct system ==")
	asserts, err := fdr.RunAll(sys.Model, 0)
	if err != nil {
		return err
	}
	for _, a := range asserts {
		fmt.Println(" ", a)
	}

	fmt.Println("\n== The flawed ECU (answers reqSw with rptUpd) ==")
	flawed, err := ota.BuildFlawed()
	if err != nil {
		return err
	}
	res, err := ota.CheckAssertion(flawed, ota.AssertR02, 0)
	if err != nil {
		return err
	}
	fmt.Printf("SP02 violated: %v, counterexample %s\n", !res.Holds, res.Counterexample)

	fmt.Println("\n== The silent ECU (drops requests) deadlocks ==")
	dead, err := ota.BuildDeadlocked()
	if err != nil {
		return err
	}
	res, err = ota.CheckAssertion(dead, ota.AssertDeadlock, 0)
	if err != nil {
		return err
	}
	fmt.Printf("deadlock found: %v after %s\n", !res.Holds, res.Counterexample)
	return nil
}
